// Package store implements the two physical RDF layouts the paper's
// systems consume:
//
//   - Vertical partitioning (VP, Abadi et al.) for the Hive engines: one
//     two-column (subject, object) table per property, with rdf:type
//     triples further partitioned into one subject-list table per type
//     object. Tables are stored ORC-style with aggressive compression.
//   - A subject-triplegroup store for the NTGA engines: triples grouped by
//     subject, partitioned into files by property equivalence class (the
//     set of properties the subject has), so graph-pattern inputs can be
//     pruned to the equivalence classes that can possibly match.
//
// Both builders materialise into the cluster's DFS so that engine input
// scans are metered.
package store

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/dfs"
	"rapidanalytics/internal/ntga"
	"rapidanalytics/internal/rdf"
)

// ORCCompressionRatio models the "80–96% reduction in data size" the paper
// reports for Hive's ORC tables.
const ORCCompressionRatio = 0.12

// VPStore is the metastore for a vertically partitioned dataset.
type VPStore struct {
	// Prefix is the DFS path prefix of all table files.
	Prefix string
	// Tables maps property IRI to the (subject, object) table file.
	Tables map[string]string
	// TypeTables maps a type object's Term.Key to the subject-list table.
	TypeTables map[string]string
	// TriplesTable is the full (subject, property, object) table backing
	// unbound-property patterns — the one query shape vertical partitioning
	// cannot route to a property table ([32]).
	TriplesTable string
	// Rows records each table file's row count, for map-join planning.
	Rows map[string]int64
}

// TableFor resolves the table file for a property reference: the
// type-object partition for rdf:type references, the property table
// otherwise. The second result reports whether the reference resolves to a
// dedicated type partition (whose rows are 1-column subject lists) and the
// third whether the table exists.
func (s *VPStore) TableFor(ref algebra.PropRef) (file string, isTypePartition, ok bool) {
	if ref.Prop == rdf.RDFType && ref.HasConstObj() {
		f, ok := s.TypeTables[ref.Obj.Key()]
		return f, true, ok
	}
	f, ok := s.Tables[ref.Prop]
	return f, false, ok
}

// BuildVP vertically partitions the graph into fs under prefix. With a
// non-nil dictionary the tables are written in the dictionary plane: every
// term is registered (in triple order, so IDs are deterministic for a given
// graph) and rows are compact ID-tuples instead of lexical tuples.
func BuildVP(fs *dfs.FS, g *rdf.Graph, prefix string, d *rdf.Dict) (*VPStore, error) {
	s := &VPStore{
		Prefix:     prefix,
		Tables:     map[string]string{},
		TypeTables: map[string]string{},
		Rows:       map[string]int64{},
	}
	writers := map[string]*dfs.Writer{}
	var werr error
	writerFor := func(name string) *dfs.Writer {
		w, ok := writers[name]
		if !ok {
			var err error
			w, err = fs.Create(name, ORCCompressionRatio)
			if err != nil {
				if werr == nil {
					werr = err
				}
				return nil
			}
			writers[name] = w
		}
		return w
	}
	encRow := func(fields ...string) []byte {
		t := codec.Tuple(fields)
		if d == nil {
			return t.Encode()
		}
		for i, f := range t {
			t[i] = d.AddString(f)
		}
		return t.EncodeIDs()
	}
	s.TriplesTable = prefix + "/triples"
	triples := writerFor(s.TriplesTable)
	for _, t := range g.Triples {
		if werr != nil {
			break
		}
		triples.WriteOwned(encRow(t.Subject.Key(), "I"+t.Property.Value, t.Object.Key()))
		s.Rows[s.TriplesTable]++
		if t.Property.Value == rdf.RDFType {
			name, ok := s.TypeTables[t.Object.Key()]
			if !ok {
				name = fmt.Sprintf("%s/type_%s", prefix, sanitize(t.Object.Key()))
				s.TypeTables[t.Object.Key()] = name
			}
			if w := writerFor(name); w != nil {
				w.WriteOwned(encRow(t.Subject.Key()))
				s.Rows[name]++
			}
			continue
		}
		name, ok := s.Tables[t.Property.Value]
		if !ok {
			name = fmt.Sprintf("%s/vp_%s", prefix, sanitize(t.Property.Value))
			s.Tables[t.Property.Value] = name
		}
		if w := writerFor(name); w != nil {
			w.WriteOwned(encRow(t.Subject.Key(), t.Object.Key()))
			s.Rows[name]++
		}
	}
	if err := closeWriters(writers, werr); err != nil {
		return nil, err
	}
	return s, nil
}

// closeWriters commits every table writer (in name order, for deterministic
// error selection) and returns the first error among werr and the Closes.
func closeWriters(writers map[string]*dfs.Writer, werr error) error {
	names := make([]string, 0, len(writers))
	for n := range writers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := writers[n].Close(); werr == nil {
			werr = err
		}
	}
	return werr
}

func sanitize(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	short := s
	if i := strings.LastIndexAny(s, "/#"); i >= 0 && i+1 < len(s) {
		short = s[i+1:]
	}
	var b strings.Builder
	for _, r := range short {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' {
			b.WriteRune(r)
		}
	}
	return fmt.Sprintf("%s_%x", b.String(), h.Sum64())
}

// TGFile describes one equivalence-class file of the triplegroup store.
type TGFile struct {
	Name string
	// Props is the equivalence class: the property IRIs the file's
	// subjects have, with rdf:type entries refined to "type=object" keys.
	Props map[string]bool
}

// TGStore is the metastore for a subject-triplegroup dataset.
type TGStore struct {
	Prefix string
	Files  []TGFile
}

// ecKey returns the equivalence-class membership key of a property
// reference, used both when building the store and when pruning inputs.
func ecKey(prop, objKey string) string {
	if prop == rdf.RDFType {
		return "type=" + objKey
	}
	return prop
}

// ECKeyForRef returns the equivalence-class key a required property
// reference prunes on. Non-type constant-object references (e.g. pub_type
// "News") prune only on the property: values are not part of the schema.
func ECKeyForRef(ref algebra.PropRef) string {
	if ref.Prop == rdf.RDFType && ref.HasConstObj() {
		return ecKey(ref.Prop, ref.Obj.Key())
	}
	return ref.Prop
}

// BuildTG groups the graph's triples by subject and materialises the
// triplegroups into fs under prefix, one file per property equivalence
// class. With a non-nil dictionary the triplegroups are written in the
// dictionary plane (every field an ID-string); the equivalence-class
// metadata stays lexical, so input pruning is plane-independent.
func BuildTG(fs *dfs.FS, g *rdf.Graph, prefix string, d *rdf.Dict) (*TGStore, error) {
	s := &TGStore{Prefix: prefix}
	tgs := ntga.GroupBySubject(g)
	type ec struct {
		writer *dfs.Writer
		props  map[string]bool
	}
	classes := map[string]*ec{}
	writers := map[string]*dfs.Writer{}
	for i := range tgs {
		tg := &tgs[i]
		props := map[string]bool{}
		for _, po := range tg.Triples {
			props[ecKey(po.Prop, po.Obj)] = true
		}
		keys := make([]string, 0, len(props))
		for k := range props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		id := hashKeys(keys)
		cls, ok := classes[id]
		if !ok {
			name := fmt.Sprintf("%s/ec_%s", prefix, id)
			w, err := fs.Create(name, 1)
			if err != nil {
				return nil, closeWriters(writers, err)
			}
			cls = &ec{writer: w, props: props}
			classes[id] = cls
			writers[name] = w
			s.Files = append(s.Files, TGFile{Name: name, Props: props})
		}
		if d == nil {
			cls.writer.WriteOwned(tg.Encode())
			continue
		}
		idtg := ntga.TripleGroup{
			Subject: d.AddString(tg.Subject),
			Triples: make([]ntga.PO, len(tg.Triples)),
		}
		for j, po := range tg.Triples {
			idtg.Triples[j] = ntga.PO{Prop: d.AddString("I" + po.Prop), Obj: d.AddString(po.Obj)}
		}
		cls.writer.WriteOwned(idtg.EncodeIDs())
	}
	if err := closeWriters(writers, nil); err != nil {
		return nil, err
	}
	sort.Slice(s.Files, func(i, j int) bool { return s.Files[i].Name < s.Files[j].Name })
	return s, nil
}

func hashKeys(keys []string) string {
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%x", h.Sum64())
}

// AllFiles returns every equivalence-class file (the no-pruning baseline).
func (s *TGStore) AllFiles() []string {
	names := make([]string, len(s.Files))
	for i, f := range s.Files {
		names[i] = f.Name
	}
	return names
}

// FilesFor returns the equivalence-class files whose subjects can possibly
// match a star with the given primary property references: the class must
// contain every required key. This is the input-pruning the paper's
// pre-processing enables ("rdf:type triples with ProductType objects were
// grouped based on prefixes").
func (s *TGStore) FilesFor(prim []algebra.PropRef) []string {
	var names []string
	for _, f := range s.Files {
		ok := true
		for _, ref := range prim {
			if !f.Props[ECKeyForRef(ref)] {
				ok = false
				break
			}
		}
		if ok {
			names = append(names, f.Name)
		}
	}
	return names
}
