package store

import (
	"testing"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/codec"
	"rapidanalytics/internal/dfs"
	"rapidanalytics/internal/ntga"
	"rapidanalytics/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }
func lit(s string) rdf.Term { return rdf.NewLiteral(s) }

func storeGraph() *rdf.Graph {
	g := &rdf.Graph{}
	g.Add(
		rdf.T(iri("p1"), rdf.TypeTerm, iri("PT1")),
		rdf.T(iri("p1"), iri("label"), lit("one")),
		rdf.T(iri("p1"), iri("pf"), iri("f1")),
		rdf.T(iri("p2"), rdf.TypeTerm, iri("PT2")),
		rdf.T(iri("p2"), iri("label"), lit("two")),
		rdf.T(iri("o1"), iri("product"), iri("p1")),
		rdf.T(iri("o1"), iri("price"), lit("10")),
	)
	return g
}

func firstRecord(t *testing.T, fs *dfs.FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := f.AllRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatalf("%s: no records", name)
	}
	return recs[0]
}

func TestBuildVP(t *testing.T) {
	fs := dfs.New()
	vp, err := BuildVP(fs, storeGraph(), "t/vp", nil)
	if err != nil {
		t.Fatal(err)
	}
	// One table per non-type property.
	for _, prop := range []string{"label", "pf", "product", "price"} {
		file, isType, ok := vp.TableFor(algebra.PropRef{Prop: "http://e/" + prop})
		if !ok || isType {
			t.Fatalf("TableFor(%s) = %q, %v, %v", prop, file, isType, ok)
		}
		f, err := fs.Open(file)
		if err != nil {
			t.Fatalf("open %s: %v", file, err)
		}
		if f.NumRecords() == 0 {
			t.Errorf("%s table empty", prop)
		}
		// ORC-style compression applies.
		if f.StoredBytes() >= f.Bytes() {
			t.Errorf("%s table not compressed: stored %d >= logical %d", prop, f.StoredBytes(), f.Bytes())
		}
		f.Close()
		// Rows decode as (subject, object) tuples.
		tu, err := codec.DecodeTuple(firstRecord(t, fs, file))
		if err != nil || len(tu) != 2 {
			t.Errorf("%s row = %v, %v", prop, tu, err)
		}
	}
	// rdf:type triples land in per-object partitions of 1-column rows.
	for _, typ := range []string{"PT1", "PT2"} {
		file, isType, ok := vp.TableFor(algebra.PropRef{Prop: rdf.RDFType, Obj: iri(typ)})
		if !ok || !isType {
			t.Fatalf("TableFor(type=%s) = %v %v", typ, isType, ok)
		}
		f, err := fs.Open(file)
		if err != nil {
			t.Fatal(err)
		}
		if f.NumRecords() != 1 {
			t.Errorf("type partition %s rows = %d", typ, f.NumRecords())
		}
		f.Close()
		tu, err := codec.DecodeTuple(firstRecord(t, fs, file))
		if err != nil || len(tu) != 1 {
			t.Errorf("type row = %v, %v", tu, err)
		}
	}
	// Missing tables are reported.
	if _, _, ok := vp.TableFor(algebra.PropRef{Prop: "http://e/nope"}); ok {
		t.Error("TableFor accepted a missing property")
	}
	if vp.Rows[vp.Tables["http://e/label"]] != 2 {
		t.Errorf("label row count = %d, want 2", vp.Rows[vp.Tables["http://e/label"]])
	}
}

func TestBuildTGEquivalenceClasses(t *testing.T) {
	fs := dfs.New()
	tg, err := BuildTG(fs, storeGraph(), "t/tg", nil)
	if err != nil {
		t.Fatal(err)
	}
	// p1 {type=PT1, label, pf}, p2 {type=PT2, label}, o1 {product, price}:
	// three distinct equivalence classes.
	if len(tg.Files) != 3 {
		t.Fatalf("equivalence classes = %d, want 3", len(tg.Files))
	}
	total := 0
	for _, f := range tg.Files {
		df, err := fs.Open(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := df.AllRecords()
		df.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			g, rest, err := ntga.DecodeTripleGroup(rec)
			if err != nil || len(rest) != 0 {
				t.Fatalf("triplegroup decode: %v", err)
			}
			total += len(g.Triples)
		}
	}
	if total != storeGraph().Len() {
		t.Errorf("triples in store = %d, want %d", total, storeGraph().Len())
	}
}

func TestFilesForPruning(t *testing.T) {
	fs := dfs.New()
	tg, err := BuildTG(fs, storeGraph(), "t/tg", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The offer star {product, price} matches exactly one class.
	offer := tg.FilesFor([]algebra.PropRef{{Prop: "http://e/product"}, {Prop: "http://e/price"}})
	if len(offer) != 1 {
		t.Errorf("offer files = %v", offer)
	}
	// A type-constrained star prunes by type object: PT1 matches only p1's
	// class, even though both product classes have label.
	pt1 := tg.FilesFor([]algebra.PropRef{
		{Prop: rdf.RDFType, Obj: iri("PT1")},
		{Prop: "http://e/label"},
	})
	if len(pt1) != 1 {
		t.Errorf("PT1 files = %v", pt1)
	}
	pt9 := tg.FilesFor([]algebra.PropRef{{Prop: rdf.RDFType, Obj: iri("PT9")}})
	if len(pt9) != 0 {
		t.Errorf("PT9 files = %v, want none", pt9)
	}
	// Label-only stars match both product classes.
	label := tg.FilesFor([]algebra.PropRef{{Prop: "http://e/label"}})
	if len(label) != 2 {
		t.Errorf("label files = %v", label)
	}
	// Non-type constant-object refs prune on the property only.
	cobj := tg.FilesFor([]algebra.PropRef{{Prop: "http://e/label", Obj: lit("one")}})
	if len(cobj) != 2 {
		t.Errorf("constant-object label files = %v, want both classes", cobj)
	}
}

func TestECKeyForRef(t *testing.T) {
	typeRef := algebra.PropRef{Prop: rdf.RDFType, Obj: iri("PT1")}
	if got := ECKeyForRef(typeRef); got != "type="+iri("PT1").Key() {
		t.Errorf("type key = %q", got)
	}
	plain := algebra.PropRef{Prop: "http://e/p", Obj: lit("x")}
	if got := ECKeyForRef(plain); got != "http://e/p" {
		t.Errorf("plain key = %q", got)
	}
}

func TestSanitizeDistinct(t *testing.T) {
	// Different IRIs with the same local name must not collide.
	a := sanitize("http://a.org/ns#price")
	b := sanitize("http://b.org/ns#price")
	if a == b {
		t.Errorf("sanitize collision: %q", a)
	}
}
