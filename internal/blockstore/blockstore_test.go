package blockstore

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func openStore(t *testing.T, dir string, shards int) *Store {
	t.Helper()
	s, err := Open(dir, shards)
	if err != nil {
		t.Fatalf("Open(%q, %d): %v", dir, shards, err)
	}
	return s
}

func writeSegment(t *testing.T, s *Store, name string, meta []byte, recs ...string) {
	t.Helper()
	w, err := s.Create(name)
	if err != nil {
		t.Fatalf("Create(%q): %v", name, err)
	}
	if meta != nil {
		w.SetMeta(meta)
	}
	for _, r := range recs {
		w.Append([]byte(r))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close(%q): %v", name, err)
	}
}

func readSegment(t *testing.T, s *Store, name string) []string {
	t.Helper()
	seg, err := s.Open(name)
	if err != nil {
		t.Fatalf("Open segment %q: %v", name, err)
	}
	defer seg.Close()
	var out []string
	it := seg.Iter(0)
	for it.Next() {
		out = append(out, string(it.Record()))
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterate %q: %v", name, err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	s := openStore(t, t.TempDir(), 4)
	writeSegment(t, s, "a/b/c", []byte("meta!"), "one", "", "three")
	seg, err := s.Open("a/b/c")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer seg.Close()
	if seg.Records() != 3 || seg.Bytes() != 8 {
		t.Errorf("Records=%d Bytes=%d", seg.Records(), seg.Bytes())
	}
	if string(seg.Meta()) != "meta!" {
		t.Errorf("Meta = %q", seg.Meta())
	}
	if got := readSegment(t, s, "a/b/c"); !reflect.DeepEqual(got, []string{"one", "", "three"}) {
		t.Errorf("records = %q", got)
	}
}

func TestMultiBlockIter(t *testing.T) {
	s := openStore(t, t.TempDir(), 1)
	var recs []string
	for i := 0; i < 3000; i++ {
		recs = append(recs, fmt.Sprintf("%04d-%s", i, strings.Repeat("x", 50)))
	}
	writeSegment(t, s, "big", nil, recs...)
	if got := readSegment(t, s, "big"); !reflect.DeepEqual(got, recs) {
		t.Fatalf("multi-block round trip mismatch: %d records", len(got))
	}
	seg, err := s.Open("big")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer seg.Close()
	for _, start := range []int64{1, 571, 572, 1500, 2999, 3000, 9999} {
		it := seg.Iter(start)
		n := start
		for it.Next() {
			if string(it.Record()) != recs[n] {
				t.Fatalf("Iter(%d): record %d mismatch", start, n)
			}
			n++
		}
		if err := it.Err(); err != nil {
			t.Fatalf("Iter(%d): %v", start, err)
		}
		want := int64(len(recs))
		if start > want {
			want = start
		}
		if n != want {
			t.Errorf("Iter(%d) ended at %d, want %d", start, n, want)
		}
	}
}

func TestListExistsDelete(t *testing.T) {
	s := openStore(t, t.TempDir(), 4)
	for _, n := range []string{"x/2", "x/1", "y/1"} {
		writeSegment(t, s, n, nil, "r")
	}
	if got := s.List("x/"); !reflect.DeepEqual(got, []string{"x/1", "x/2"}) {
		t.Errorf("List = %v", got)
	}
	if !s.Exists("x/1") || s.Exists("x/3") {
		t.Error("Exists wrong")
	}
	if err := s.Delete("x/1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if s.Exists("x/1") {
		t.Error("x/1 survives delete")
	}
	if err := s.Delete("x/1"); err != nil {
		t.Errorf("second Delete: %v", err)
	}
}

func TestShardLayout(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 4)
	for i := 0; i < 32; i++ {
		writeSegment(t, s, fmt.Sprintf("f%d", i), nil, "r")
	}
	used := 0
	for i := 0; i < 4; i++ {
		ents, err := os.ReadDir(filepath.Join(dir, fmt.Sprintf("shard-%03d", i)))
		if err != nil {
			t.Fatalf("shard dir %d: %v", i, err)
		}
		if len(ents) > 0 {
			used++
		}
	}
	// 32 names over 4 shards: all shards should carry some segments.
	if used < 2 {
		t.Errorf("only %d of 4 shards used", used)
	}
}

// Reopening a store directory must rebuild the index from segment footers:
// the disk backend's persistence guarantee.
func TestReopenPersistence(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 2)
	writeSegment(t, s, "keep/me", []byte{1, 2}, "alpha", "beta")

	// Leave a stale temp file behind; reopen must clean it up.
	orphan := filepath.Join(dir, "shard-000", "orphan.123.tmp")
	if err := os.WriteFile(orphan, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, 2)
	if !s2.Exists("keep/me") {
		t.Fatal("segment lost on reopen")
	}
	if got := readSegment(t, s2, "keep/me"); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Errorf("records after reopen = %q", got)
	}
	st, ok := s2.Stat("keep/me")
	if !ok || st.Records != 2 || string(st.Meta) != "\x01\x02" {
		t.Errorf("Stat after reopen = %+v ok=%v", st, ok)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphan temp file survived reopen")
	}
}

func TestShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	openStore(t, dir, 2)
	if _, err := Open(dir, 8); err == nil {
		t.Fatal("Open with different shard count succeeded")
	}
	// Same count (or the default-resolution 0 asking to reuse) reopens fine.
	openStore(t, dir, 2)
}

func TestPendingVisibility(t *testing.T) {
	s := openStore(t, t.TempDir(), 2)
	w, err := s.Create("pending")
	if err != nil {
		t.Fatal(err)
	}
	w.Append([]byte("not yet committed"))
	if !s.Exists("pending") {
		t.Error("pending segment invisible to Exists")
	}
	seg, err := s.Open("pending")
	if err != nil {
		t.Fatalf("Open pending: %v", err)
	}
	if seg.Records() != 0 {
		t.Errorf("pending segment shows %d records before Close", seg.Records())
	}
	seg.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readSegment(t, s, "pending"); !reflect.DeepEqual(got, []string{"not yet committed"}) {
		t.Errorf("records after commit = %q", got)
	}
}

func TestCorruptSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, 1)
	writeSegment(t, s, "victim", nil, strings.Repeat("z", 500))
	// Flip a payload byte on disk; the block CRC must catch it.
	path := filepath.Join(dir, "shard-000", "victim.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerLen+10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, 1)
	seg, err := s2.Open("victim")
	if err != nil {
		return // rejected at open: fine
	}
	defer seg.Close()
	it := seg.Iter(0)
	for it.Next() {
	}
	if it.Err() == nil {
		t.Fatal("corrupt block read back without error")
	}
}
