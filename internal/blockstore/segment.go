// Package blockstore implements the on-disk storage layer backing the
// disk-backed DFS: append-only segment files of length-prefixed record
// blocks with per-block CRCs and a block index in a footer, laid out in N
// hash-partitioned shard directories. A segment is immutable once written
// (writers build a temp file that is atomically renamed on Close), so
// readers never observe partial writes and an open segment stays readable
// after the name is truncated or deleted — the same snapshot semantics the
// in-memory DFS backend provides.
//
// Segment layout:
//
//	+-----------------+  "RSEG" magic + format version byte
//	| header (5 B)    |
//	+-----------------+
//	| block 0         |  u32le CRC32(payload) | payload
//	| block 1         |  payload = records, each uvarint(len+1) | bytes
//	| ...             |
//	+-----------------+
//	| footer payload  |  block index {offset,len,records,rawBytes}*,
//	|                 |  totals, opaque metadata blob
//	+-----------------+
//	| trailer (20 B)  |  u32le CRC32(footer) | u64le footerOff |
//	+-----------------+  u32le footerLen | "RSGF" magic
//
// Record lengths are stored as uvarint(len+1): a stored zero is invalid,
// so truncation or corruption inside a block cannot silently decode as an
// empty record, while genuinely empty records still round-trip.
package blockstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Segment format constants.
const (
	segMagic     = "RSEG"
	segVersion   = 0x01
	trailerMagic = "RSGF"
	headerLen    = 5
	trailerLen   = 20

	// defaultBlockBytes is the target uncompressed payload size of one
	// block. A block always holds at least one record, so records larger
	// than the target get a block of their own.
	defaultBlockBytes = 32 << 10
)

// ErrCorrupt reports a structurally invalid or corrupted segment: bad
// magic, out-of-bounds index entries, CRC mismatches, or invalid record
// framing. Test with errors.Is.
var ErrCorrupt = errors.New("blockstore: corrupt segment")

// blockMeta is one footer index entry.
type blockMeta struct {
	offset  int64 // file offset of the block's CRC word
	length  int64 // payload length in bytes (excluding the CRC word)
	records int64 // records in the block
	raw     int64 // sum of record lengths in the block
}

// segMeta is a parsed footer: the block index plus segment totals.
type segMeta struct {
	blocks  []blockMeta
	records int64
	bytes   int64 // sum of record lengths across all blocks
	meta    []byte
}

// segmentEncoder streams records into segment format on an io.Writer,
// buffering one block at a time.
type segmentEncoder struct {
	w           io.Writer
	off         int64
	buf         []byte
	bufRecords  int64
	bufRaw      int64
	blocks      []blockMeta
	records     int64
	bytes       int64
	blockTarget int
	err         error
}

// newSegmentEncoder writes the segment header and returns the encoder.
func newSegmentEncoder(w io.Writer, blockTarget int) *segmentEncoder {
	if blockTarget <= 0 {
		blockTarget = defaultBlockBytes
	}
	e := &segmentEncoder{w: w, blockTarget: blockTarget}
	e.write(append([]byte(segMagic), segVersion))
	return e
}

func (e *segmentEncoder) write(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
	e.off += int64(len(p))
}

// append adds one record to the current block, flushing the block first if
// it has reached the target size.
func (e *segmentEncoder) append(rec []byte) {
	if len(e.buf) >= e.blockTarget {
		e.flushBlock()
	}
	e.buf = binary.AppendUvarint(e.buf, uint64(len(rec))+1)
	e.buf = append(e.buf, rec...)
	e.bufRecords++
	e.bufRaw += int64(len(rec))
	e.records++
	e.bytes += int64(len(rec))
}

// flushBlock writes the buffered block with its CRC and records its index
// entry. Empty blocks are never written.
func (e *segmentEncoder) flushBlock() {
	if e.bufRecords == 0 {
		return
	}
	bm := blockMeta{offset: e.off, length: int64(len(e.buf)), records: e.bufRecords, raw: e.bufRaw}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(e.buf))
	e.write(crc[:])
	e.write(e.buf)
	e.blocks = append(e.blocks, bm)
	e.buf = e.buf[:0]
	e.bufRecords = 0
	e.bufRaw = 0
}

// finish flushes the last block, writes the footer and trailer, and
// returns the first write error, if any.
func (e *segmentEncoder) finish(meta []byte) error {
	e.flushBlock()
	footer := encodeFooter(&segMeta{blocks: e.blocks, records: e.records, bytes: e.bytes, meta: meta})
	footerOff := e.off
	e.write(footer)
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint32(tr[0:4], crc32.ChecksumIEEE(footer))
	binary.LittleEndian.PutUint64(tr[4:12], uint64(footerOff))
	binary.LittleEndian.PutUint32(tr[12:16], uint32(len(footer)))
	copy(tr[16:20], trailerMagic)
	e.write(tr[:])
	return e.err
}

// encodeFooter serialises the block index, totals and metadata blob.
func encodeFooter(m *segMeta) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(m.blocks)))
	for _, b := range m.blocks {
		buf = binary.AppendUvarint(buf, uint64(b.offset))
		buf = binary.AppendUvarint(buf, uint64(b.length))
		buf = binary.AppendUvarint(buf, uint64(b.records))
		buf = binary.AppendUvarint(buf, uint64(b.raw))
	}
	buf = binary.AppendUvarint(buf, uint64(m.records))
	buf = binary.AppendUvarint(buf, uint64(m.bytes))
	buf = binary.AppendUvarint(buf, uint64(len(m.meta)))
	buf = append(buf, m.meta...)
	return buf
}

// parseSegment validates a segment's framing and returns its parsed
// footer. It reads only the header, footer and trailer; block payloads are
// read (and CRC-checked) lazily by iterators.
func parseSegment(r io.ReaderAt, size int64) (*segMeta, error) {
	if size < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes is smaller than header+trailer", ErrCorrupt, size)
	}
	var hdr [headerLen]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("blockstore: reading header: %w", err)
	}
	if string(hdr[:4]) != segMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:4])
	}
	if hdr[4] != segVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, hdr[4])
	}
	var tr [trailerLen]byte
	if _, err := r.ReadAt(tr[:], size-trailerLen); err != nil {
		return nil, fmt.Errorf("blockstore: reading trailer: %w", err)
	}
	if string(tr[16:20]) != trailerMagic {
		return nil, fmt.Errorf("%w: bad trailer magic %q (truncated segment?)", ErrCorrupt, tr[16:20])
	}
	footerCRC := binary.LittleEndian.Uint32(tr[0:4])
	footerOff := int64(binary.LittleEndian.Uint64(tr[4:12]))
	footerLen := int64(binary.LittleEndian.Uint32(tr[12:16]))
	if footerOff < headerLen || footerLen < 0 || footerOff+footerLen != size-trailerLen {
		return nil, fmt.Errorf("%w: footer [%d,+%d) does not fit segment of %d bytes", ErrCorrupt, footerOff, footerLen, size)
	}
	footer := make([]byte, footerLen)
	if _, err := r.ReadAt(footer, footerOff); err != nil {
		return nil, fmt.Errorf("blockstore: reading footer: %w", err)
	}
	if crc32.ChecksumIEEE(footer) != footerCRC {
		return nil, fmt.Errorf("%w: footer CRC mismatch", ErrCorrupt)
	}
	m, err := decodeFooter(footer)
	if err != nil {
		return nil, err
	}
	// Validate the block index against the physical layout: offsets must
	// be monotonically increasing and every block must fit before the
	// footer.
	prevEnd := int64(headerLen)
	var records, bytes int64
	for i, b := range m.blocks {
		if b.offset != prevEnd || b.length < 0 || b.records <= 0 || b.raw < 0 {
			return nil, fmt.Errorf("%w: block %d index entry invalid", ErrCorrupt, i)
		}
		prevEnd = b.offset + 4 + b.length
		if prevEnd > footerOff {
			return nil, fmt.Errorf("%w: block %d overruns footer", ErrCorrupt, i)
		}
		records += b.records
		bytes += b.raw
	}
	if prevEnd != footerOff {
		return nil, fmt.Errorf("%w: %d unindexed bytes before footer", ErrCorrupt, footerOff-prevEnd)
	}
	if records != m.records || bytes != m.bytes {
		return nil, fmt.Errorf("%w: totals disagree with block index", ErrCorrupt)
	}
	return m, nil
}

// decodeFooter parses the footer payload, bounds-checking every field.
func decodeFooter(buf []byte) (*segMeta, error) {
	u := func() (int64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 || v > 1<<62 {
			return 0, fmt.Errorf("%w: bad footer varint", ErrCorrupt)
		}
		buf = buf[n:]
		return int64(v), nil
	}
	n, err := u()
	if err != nil {
		return nil, err
	}
	// Each index entry takes at least 4 bytes; reject counts the payload
	// cannot possibly hold before allocating.
	if n > int64(len(buf))/4 {
		return nil, fmt.Errorf("%w: block count %d exceeds footer size", ErrCorrupt, n)
	}
	m := &segMeta{blocks: make([]blockMeta, 0, n)}
	for i := int64(0); i < n; i++ {
		var b blockMeta
		if b.offset, err = u(); err != nil {
			return nil, err
		}
		if b.length, err = u(); err != nil {
			return nil, err
		}
		if b.records, err = u(); err != nil {
			return nil, err
		}
		if b.raw, err = u(); err != nil {
			return nil, err
		}
		m.blocks = append(m.blocks, b)
	}
	if m.records, err = u(); err != nil {
		return nil, err
	}
	if m.bytes, err = u(); err != nil {
		return nil, err
	}
	metaLen, err := u()
	if err != nil {
		return nil, err
	}
	if metaLen != int64(len(buf)) {
		return nil, fmt.Errorf("%w: metadata length %d does not match remaining %d footer bytes", ErrCorrupt, metaLen, len(buf))
	}
	m.meta = append([]byte(nil), buf...)
	return m, nil
}

// readBlock reads and CRC-checks one block payload into a fresh buffer.
// The buffer is never reused, so record slices handed out by iterators
// stay valid indefinitely.
func readBlock(r io.ReaderAt, b blockMeta) ([]byte, error) {
	buf := make([]byte, 4+b.length)
	if _, err := r.ReadAt(buf, b.offset); err != nil {
		return nil, fmt.Errorf("blockstore: reading block at %d: %w", b.offset, err)
	}
	want := binary.LittleEndian.Uint32(buf[:4])
	payload := buf[4:]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: block CRC mismatch at offset %d", ErrCorrupt, b.offset)
	}
	return payload, nil
}

// blockRecords decodes a block payload into record slices (subslices of
// payload), verifying the framing and the indexed record count.
func blockRecords(payload []byte, want int64) ([][]byte, error) {
	recs := make([][]byte, 0, want)
	for len(payload) > 0 {
		v, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad record length varint", ErrCorrupt)
		}
		if v == 0 {
			return nil, fmt.Errorf("%w: zero record length field", ErrCorrupt)
		}
		rl := v - 1
		payload = payload[n:]
		if rl > uint64(len(payload)) {
			return nil, fmt.Errorf("%w: record length %d overruns block", ErrCorrupt, rl)
		}
		recs = append(recs, payload[:rl:rl])
		payload = payload[rl:]
	}
	if int64(len(recs)) != want {
		return nil, fmt.Errorf("%w: block holds %d records, index says %d", ErrCorrupt, len(recs), want)
	}
	return recs, nil
}
