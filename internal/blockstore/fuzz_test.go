package blockstore

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// encodeForFuzz builds a valid segment in memory from fuzz-derived records.
func encodeForFuzz(t interface{ Fatal(...any) }, recs [][]byte, meta []byte, blockTarget int) []byte {
	var buf bytes.Buffer
	enc := newSegmentEncoder(&buf, blockTarget)
	for _, r := range recs {
		enc.append(r)
	}
	if err := enc.finish(meta); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzRecords derives a deterministic record list from raw fuzz bytes:
// length-prefixed slices, including empty records.
func fuzzRecords(data []byte) [][]byte {
	var recs [][]byte
	for len(data) > 0 && len(recs) < 1024 {
		n := int(data[0])
		data = data[1:]
		if n > len(data) {
			n = len(data)
		}
		recs = append(recs, data[:n:n])
		data = data[n:]
	}
	return recs
}

// readAllFuzz drains a parsed segment, checking structural consistency.
func readAllFuzz(t *testing.T, data []byte, m *segMeta) [][]byte {
	r := bytes.NewReader(data)
	var out [][]byte
	for _, bm := range m.blocks {
		payload, err := readBlock(r, bm)
		if err != nil {
			t.Fatalf("readBlock after successful parse: %v", err)
		}
		recs, err := blockRecords(payload, bm.records)
		if err != nil {
			t.Fatalf("blockRecords after successful parse: %v", err)
		}
		out = append(out, recs...)
	}
	if int64(len(out)) != m.records {
		t.Fatalf("drained %d records, footer says %d", len(out), m.records)
	}
	return out
}

// FuzzSegmentParse throws raw bytes at the segment parser and, when the
// parse succeeds, at the block reader. Nothing may panic; truncated
// footers, corrupt CRCs and zero-length record frames must all surface as
// errors.
func FuzzSegmentParse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(encodeForFuzz(f, nil, nil, 0))
	f.Add(encodeForFuzz(f, [][]byte{[]byte("hello"), {}, []byte("world")}, []byte("m"), 0))
	big := encodeForFuzz(f, fuzzRecords(bytes.Repeat([]byte{7, 1, 2, 3, 4, 5, 6, 7}, 64)), nil, 32)
	f.Add(big)
	// Seed classic corruptions: truncated trailer, flipped block byte,
	// flipped footer byte, zero-length record frame in the payload.
	f.Add(big[:len(big)-5])
	flip := append([]byte(nil), big...)
	flip[headerLen+2] ^= 0xFF
	f.Add(flip)
	flip2 := append([]byte(nil), big...)
	flip2[len(flip2)-10] ^= 0xFF
	f.Add(flip2)
	zeroFrame := []byte(segMagic + "\x01")
	payload := []byte{0} // stored length 0 = invalid frame
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	zeroFrame = append(zeroFrame, crc[:]...)
	zeroFrame = append(zeroFrame, payload...)
	f.Add(zeroFrame)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseSegment(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		// A valid footer does not vouch for the blocks: reads may still
		// detect corruption (CRC, framing) and must error rather than panic.
		r := bytes.NewReader(data)
		var n int64
		for _, bm := range m.blocks {
			payload, err := readBlock(r, bm)
			if err != nil {
				return
			}
			recs, err := blockRecords(payload, bm.records)
			if err != nil {
				return
			}
			n += int64(len(recs))
		}
		if n != m.records {
			t.Fatalf("drained %d records, footer says %d", n, m.records)
		}
	})
}

// FuzzSegmentRoundTrip encodes fuzz-derived records, checks they read back
// identically, then flips one byte and requires the mutation to be either
// detected or immaterial — never a panic, never silently wrong totals.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(0), byte(0))
	f.Add([]byte{3, 'a', 'b', 'c', 0, 2, 'x', 'y'}, uint16(5), byte(1))
	f.Add(bytes.Repeat([]byte{9, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 40), uint16(64), byte(200))

	f.Fuzz(func(t *testing.T, raw []byte, flipPos uint16, blockSel byte) {
		recs := fuzzRecords(raw)
		blockTarget := int(blockSel)%512 + 1
		data := encodeForFuzz(t, recs, []byte("meta"), blockTarget)

		m, err := parseSegment(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatalf("parse of freshly encoded segment: %v", err)
		}
		got := readAllFuzz(t, data, m)
		if len(got) != len(recs) {
			t.Fatalf("round trip: %d records, want %d", len(got), len(recs))
		}
		for i := range recs {
			if !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("record %d mismatch", i)
			}
		}

		// Single-byte corruption must never panic; parse or read may fail,
		// and any read that succeeds end-to-end must be CRC-clean.
		mut := append([]byte(nil), data...)
		pos := int(flipPos) % len(mut)
		mut[pos] ^= 0xA5
		mm, err := parseSegment(bytes.NewReader(mut), int64(len(mut)))
		if err != nil {
			return
		}
		r := bytes.NewReader(mut)
		for _, bm := range mm.blocks {
			payload, err := readBlock(r, bm)
			if err != nil {
				return
			}
			if _, err := blockRecords(payload, bm.records); err != nil {
				return
			}
		}
	})
}
