package blockstore

import (
	"fmt"
	"hash/fnv"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	// metaFile records the store's shard count so a directory is never
	// reopened with a different layout (which would strand segments in
	// shards the hash no longer routes to).
	metaFile = "BLOCKSTORE"
	// DefaultShards is the shard count used when Open is given zero.
	DefaultShards = 8
	segSuffix     = ".seg"
)

// Stat summarises one stored segment without opening it.
type Stat struct {
	// Records is the segment's record count.
	Records int64
	// Bytes is the sum of record lengths (uncompressed logical bytes).
	Bytes int64
	// Meta is the opaque metadata blob stored in the segment footer (the
	// DFS layer keeps the compression ratio here).
	Meta []byte
}

// entry is one name in the store index. A nil stat marks a pending entry:
// the name has been created but its writer has not committed yet, so the
// name exists with no readable content.
type entry struct {
	path string
	stat *Stat
}

// Store is a sharded collection of named segments rooted at a directory.
// Names are flat strings (the DFS namespace, slashes included); each name
// is hashed to one of N shard directories and stored as a single segment
// file. All methods are safe for concurrent use.
type Store struct {
	dir    string
	shards int

	mu    sync.RWMutex
	index map[string]*entry
}

// Open opens (creating if needed) a sharded store rooted at dir. shards
// <= 0 selects DefaultShards; reopening an existing store directory with a
// different shard count is an error. Existing segments are scanned into
// the in-memory name index.
func Open(dir string, shards int) (*Store, error) {
	if shards <= 0 {
		shards = DefaultShards
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	metaPath := filepath.Join(dir, metaFile)
	if b, err := os.ReadFile(metaPath); err == nil {
		var existing int
		if _, err := fmt.Sscanf(string(b), "shards=%d", &existing); err != nil {
			return nil, fmt.Errorf("blockstore: unreadable %s: %q", metaFile, b)
		}
		if existing != shards {
			return nil, fmt.Errorf("blockstore: %s has %d shards, asked to open with %d", dir, existing, shards)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("blockstore: %w", err)
	} else if err := os.WriteFile(metaPath, fmt.Appendf(nil, "shards=%d\n", shards), 0o666); err != nil {
		return nil, fmt.Errorf("blockstore: %w", err)
	}
	s := &Store{dir: dir, shards: shards, index: map[string]*entry{}}
	for i := 0; i < shards; i++ {
		if err := os.MkdirAll(s.shardDir(i), 0o777); err != nil {
			return nil, fmt.Errorf("blockstore: %w", err)
		}
		if err := s.scanShard(i); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// scanShard indexes the committed segments already present in one shard
// directory, reading each segment's footer for its stat. Leftover .tmp
// files from interrupted writers are removed.
func (s *Store) scanShard(i int) error {
	ents, err := os.ReadDir(s.shardDir(i))
	if err != nil {
		return fmt.Errorf("blockstore: %w", err)
	}
	for _, de := range ents {
		fn := de.Name()
		path := filepath.Join(s.shardDir(i), fn)
		if strings.HasSuffix(fn, ".tmp") {
			os.Remove(path)
			continue
		}
		if !strings.HasSuffix(fn, segSuffix) {
			continue
		}
		name, err := url.PathUnescape(strings.TrimSuffix(fn, segSuffix))
		if err != nil {
			return fmt.Errorf("blockstore: unparseable segment file name %q: %w", fn, err)
		}
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("blockstore: %w", err)
		}
		fi, err := f.Stat()
		if err == nil {
			var m *segMeta
			m, err = parseSegment(f, fi.Size())
			if err == nil {
				s.index[name] = &entry{path: path, stat: &Stat{Records: m.records, Bytes: m.bytes, Meta: m.meta}}
			}
		}
		f.Close()
		if err != nil {
			return fmt.Errorf("blockstore: scanning %s: %w", path, err)
		}
	}
	return nil
}

func (s *Store) shardDir(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%03d", i))
}

// shardOf routes a name to its shard with FNV-1a, the same hash the
// MapReduce layer partitions reduce keys with.
func (s *Store) shardOf(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(s.shards))
}

// pathOf returns the segment file path a name commits to.
func (s *Store) pathOf(name string) string {
	return filepath.Join(s.shardDir(s.shardOf(name)), url.PathEscape(name)+segSuffix)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Shards returns the store's shard count.
func (s *Store) Shards() int { return s.shards }

// Create starts writing a (new or truncated) segment under name. The name
// becomes visible (Exists, List) immediately, but its content commits
// atomically at SegmentWriter.Close; until then readers of the name see no
// records, and readers holding the previous segment open keep their
// snapshot.
func (s *Store) Create(name string) (*SegmentWriter, error) {
	final := s.pathOf(name)
	f, err := os.CreateTemp(filepath.Dir(final), filepath.Base(final)+".*.tmp")
	if err != nil {
		return nil, fmt.Errorf("blockstore: create %s: %w", name, err)
	}
	s.mu.Lock()
	if _, ok := s.index[name]; !ok {
		s.index[name] = &entry{path: final}
	}
	s.mu.Unlock()
	return &SegmentWriter{store: s, name: name, final: final, f: f, enc: newSegmentEncoder(f, 0)}, nil
}

// SegmentWriter streams records into a new segment. Not safe for
// concurrent use; errors are sticky and reported by Close.
type SegmentWriter struct {
	store *Store
	name  string
	final string
	f     *os.File
	enc   *segmentEncoder
	meta  []byte
	done  bool
}

// Append adds one record. The slice is consumed immediately; the caller
// may reuse it.
func (w *SegmentWriter) Append(rec []byte) { w.enc.append(rec) }

// SetMeta sets the opaque metadata blob stored in the segment footer.
func (w *SegmentWriter) SetMeta(meta []byte) { w.meta = meta }

// Records returns the number of records appended so far.
func (w *SegmentWriter) Records() int64 { return w.enc.records }

// Bytes returns the sum of record lengths appended so far.
func (w *SegmentWriter) Bytes() int64 { return w.enc.bytes }

// Close finishes the segment (footer, trailer) and atomically renames it
// into place, making the content visible to subsequent Opens. On error the
// temp file is removed and the segment is not committed.
func (w *SegmentWriter) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	err := w.enc.finish(w.meta)
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(w.f.Name(), w.final)
	}
	if err != nil {
		os.Remove(w.f.Name())
		return fmt.Errorf("blockstore: writing %s: %w", w.name, err)
	}
	w.store.mu.Lock()
	w.store.index[w.name] = &entry{
		path: w.final,
		stat: &Stat{Records: w.enc.records, Bytes: w.enc.bytes, Meta: w.meta},
	}
	w.store.mu.Unlock()
	return nil
}

// Open returns a read handle on the named segment. The handle holds the
// underlying file open, so it (and its iterators) keeps working after the
// name is deleted or truncated by a new Create. A pending name (created,
// not yet committed) opens as an empty segment.
func (s *Store) Open(name string) (*Segment, error) {
	s.mu.RLock()
	e, ok := s.index[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("blockstore: no such segment %q", name)
	}
	if e.stat == nil {
		return &Segment{name: name}, nil
	}
	f, err := os.Open(e.path)
	if err != nil {
		return nil, fmt.Errorf("blockstore: open %s: %w", name, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("blockstore: open %s: %w", name, err)
	}
	m, err := parseSegment(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("blockstore: open %s: %w", name, err)
	}
	return &Segment{name: name, f: f, meta: m}, nil
}

// Exists reports whether the name exists (committed or pending).
func (s *Store) Exists(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[name]
	return ok
}

// Stat returns the named segment's committed stat. Pending names report a
// zero Stat.
func (s *Store) Stat(name string) (Stat, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.index[name]
	if !ok {
		return Stat{}, false
	}
	if e.stat == nil {
		return Stat{}, true
	}
	return *e.stat, true
}

// Delete removes the named segment. Deleting a missing name is a no-op.
// Open handles on the segment keep reading their snapshot.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	e, ok := s.index[name]
	delete(s.index, name)
	s.mu.Unlock()
	if !ok {
		return nil
	}
	if err := os.Remove(e.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("blockstore: delete %s: %w", name, err)
	}
	return nil
}

// List returns the names with the given prefix, sorted.
func (s *Store) List(prefix string) []string {
	s.mu.RLock()
	var names []string
	for n := range s.index {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Segment is a read handle on one committed segment snapshot.
type Segment struct {
	name string
	f    *os.File // nil for pending (empty) segments
	meta *segMeta
}

// Name returns the segment's store name.
func (g *Segment) Name() string { return g.name }

// Records returns the segment's record count.
func (g *Segment) Records() int64 {
	if g.meta == nil {
		return 0
	}
	return g.meta.records
}

// Bytes returns the sum of the segment's record lengths.
func (g *Segment) Bytes() int64 {
	if g.meta == nil {
		return 0
	}
	return g.meta.bytes
}

// Meta returns the segment's opaque metadata blob.
func (g *Segment) Meta() []byte {
	if g.meta == nil {
		return nil
	}
	return g.meta.meta
}

// Close releases the underlying file. Iterators created earlier fail on
// their next block read. Unclosed handles are released by the runtime's
// os.File finalizer at GC.
func (g *Segment) Close() error {
	if g.f == nil {
		return nil
	}
	return g.f.Close()
}

// Iter returns an iterator positioned at record index start (0-based).
// Reads go through the handle's file descriptor with ReadAt, so many
// iterators may run concurrently over one Segment.
func (g *Segment) Iter(start int64) *Iterator {
	it := &Iterator{seg: g}
	if g.meta == nil {
		return it
	}
	// Seek the block containing record #start.
	var before int64
	for it.block < len(g.meta.blocks) {
		n := g.meta.blocks[it.block].records
		if before+n > start {
			break
		}
		before += n
		it.block++
	}
	it.skip = start - before
	if start >= g.meta.records {
		it.skip = 0
		it.block = len(g.meta.blocks)
	}
	return it
}

// Iterator streams a segment's records in order. Record slices remain
// valid after the iterator advances and after the segment is closed.
type Iterator struct {
	seg   *Segment
	block int
	skip  int64
	recs  [][]byte
	pos   int
	cur   []byte
	err   error
}

// Next advances to the next record, reporting false at the end of the
// segment or on error.
func (it *Iterator) Next() bool {
	if it.err != nil {
		return false
	}
	for it.pos >= len(it.recs) {
		m := it.seg.meta
		if m == nil || it.block >= len(m.blocks) {
			return false
		}
		bm := m.blocks[it.block]
		payload, err := readBlock(it.seg.f, bm)
		if err == nil {
			it.recs, err = blockRecords(payload, bm.records)
		}
		if err != nil {
			it.err = err
			return false
		}
		it.block++
		it.pos = int(it.skip)
		it.skip = 0
	}
	it.cur = it.recs[it.pos]
	it.pos++
	return true
}

// Record returns the current record.
func (it *Iterator) Record() []byte { return it.cur }

// Err returns the first error the iterator hit, if any.
func (it *Iterator) Err() error { return it.err }
