package bench

import (
	"testing"
)

// The tentpole guarantee at the query level: every single-grouping and
// multi-grouping BSBM catalog query returns identical rows and identical
// per-cycle volume metrics whether the reduce phase runs sequentially or on
// the parallel worker pool, on every engine.
func TestParallelReduceMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog comparison in -short mode")
	}
	queries := []string{"G1", "G2", "G3", "G4", "MG1", "MG2", "MG3", "MG4"}
	rep, err := CompareReduceModes("bsbm-500k", queries, Engines(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(queries) * len(Engines()); len(rep.Runs) != want {
		t.Fatalf("got %d runs, want %d", len(rep.Runs), want)
	}
	for _, r := range rep.Runs {
		if !r.RowsIdentical {
			t.Errorf("%s via %s: parallel reduce changed the result rows", r.Query, r.Engine)
		}
		if !r.VolumesIdentical {
			t.Errorf("%s via %s: parallel reduce changed the volume metrics", r.Query, r.Engine)
		}
	}
}

// The phase walls recorded by the harness must be populated for
// MapReduce-backed runs.
func TestHarnessRecordsPhaseWalls(t *testing.T) {
	h := NewHarness(false)
	rs, err := h.Run("MG1", "bsbm-500k", Engines()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("got %d results", len(rs))
	}
	if rs[0].MapWall <= 0 || rs[0].ReduceWall <= 0 {
		t.Errorf("phase walls not recorded: %+v", rs[0])
	}
}
