package bench

import (
	"context"
	"fmt"
	"time"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/core"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/hive"
	"rapidanalytics/internal/obs"
	"rapidanalytics/internal/rapid"
	"rapidanalytics/internal/refimpl"
	"rapidanalytics/internal/sparql"
)

// RunResult records one (query, dataset, engine) execution.
type RunResult struct {
	Query   string
	Dataset string
	Engine  string

	Cycles        int
	MapOnlyCycles int
	// SimSeconds is the cost model's cluster-time estimate at paper scale.
	SimSeconds float64
	// Wall is the real in-process execution time.
	Wall time.Duration
	// MapWall, ShuffleSortWall and ReduceWall split Wall's engine portion
	// into the measured MapReduce phase times.
	MapWall         time.Duration
	ShuffleSortWall time.Duration
	ReduceWall      time.Duration
	// ShuffleBytes and MaterializedBytes are measured volumes (unscaled).
	ShuffleBytes      int64
	MaterializedBytes int64
	Rows              int
	// Verified reports whether the result matched the oracle (set when the
	// harness runs with verification).
	Verified bool
	// Span is the execution's hierarchical span tree, captured only by
	// RunTraced; nil otherwise.
	Span *obs.Snapshot `json:",omitempty"`
}

// Engines returns the paper's four evaluated systems, in presentation
// order.
func Engines() []engine.Engine {
	return []engine.Engine{hive.NewNaive(), hive.NewMQO(), rapid.New(), core.New()}
}

// EngineNames returns the display names in presentation order.
func EngineNames() []string {
	names := make([]string, 0, 4)
	for _, e := range Engines() {
		names = append(names, e.Name())
	}
	return names
}

// Harness runs catalog queries over cached datasets.
type Harness struct {
	Loader *Loader
	// Verify cross-checks every engine result against the in-memory
	// oracle.
	Verify bool
}

// NewHarness returns a harness with a fresh dataset cache.
func NewHarness(verify bool) *Harness {
	return &Harness{Loader: NewLoader(), Verify: verify}
}

// Run executes one catalog query on one dataset across the given engines.
func (h *Harness) Run(queryID, datasetID string, engines []engine.Engine) ([]RunResult, error) {
	return h.run(queryID, datasetID, engines, false)
}

// RunTraced is Run with span tracing enabled: each RunResult carries the
// execution's span tree in Span.
func (h *Harness) RunTraced(queryID, datasetID string, engines []engine.Engine) ([]RunResult, error) {
	return h.run(queryID, datasetID, engines, true)
}

func (h *Harness) run(queryID, datasetID string, engines []engine.Engine, traced bool) ([]RunResult, error) {
	q, ok := Get(queryID)
	if !ok {
		return nil, fmt.Errorf("bench: unknown query %q", queryID)
	}
	parsed, err := sparql.Parse(q.SPARQL)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", queryID, err)
	}
	aq, err := algebra.Build(parsed)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", queryID, err)
	}
	c, ds, err := h.Loader.Load(datasetID)
	if err != nil {
		return nil, err
	}
	var oracle *engine.Result
	if h.Verify {
		oracle, err = refimpl.Execute(ds.Graph, aq)
		if err != nil {
			return nil, fmt.Errorf("bench: %s oracle: %w", queryID, err)
		}
	}
	var out []RunResult
	for _, e := range engines {
		ec := c
		var root *obs.Span
		if traced {
			root = obs.New(obs.KindQuery, e.Name())
			ec = c.WithContext(obs.NewContext(context.Background(), root))
		}
		start := time.Now()
		res, wm, err := e.Execute(ec, ds, aq)
		if err != nil {
			return nil, fmt.Errorf("bench: %s on %s via %s: %w", queryID, datasetID, e.Name(), err)
		}
		root.End()
		mapNs, shuffleSortNs, reduceNs := wm.PhaseWalls()
		rr := RunResult{
			Query:             queryID,
			Dataset:           datasetID,
			Engine:            e.Name(),
			Cycles:            wm.Cycles(),
			MapOnlyCycles:     wm.MapOnlyCycles(),
			SimSeconds:        wm.SimSeconds(),
			Wall:              time.Since(start),
			MapWall:           time.Duration(mapNs),
			ShuffleSortWall:   time.Duration(shuffleSortNs),
			ReduceWall:        time.Duration(reduceNs),
			ShuffleBytes:      wm.ShuffleBytes(),
			MaterializedBytes: wm.MaterializedBytes(),
			Rows:              len(res.Rows),
			Span:              root.Snapshot(),
		}
		if h.Verify {
			if diff := oracle.Diff(res); diff != "" {
				return nil, fmt.Errorf("bench: %s on %s via %s diverges from oracle: %s", queryID, datasetID, e.Name(), diff)
			}
			rr.Verified = true
		}
		out = append(out, rr)
	}
	return out, nil
}

// RunAll executes a list of query ids on a dataset across engines.
func (h *Harness) RunAll(queryIDs []string, datasetID string, engines []engine.Engine) ([]RunResult, error) {
	var out []RunResult
	for _, id := range queryIDs {
		rs, err := h.Run(id, datasetID, engines)
		if err != nil {
			return out, err
		}
		out = append(out, rs...)
	}
	return out, nil
}

// RunAblation runs RAPIDAnalytics option variants on one query/dataset:
// the Figure 6(a) vs 6(b) comparison plus the α-filter and hash-aggregation
// ablations.
func (h *Harness) RunAblation(queryID, datasetID string) ([]RunResult, error) {
	variants := []struct {
		name string
		opts core.Options
	}{
		{"RA (parallel agg, Fig 6b)", core.DefaultOptions()},
		{"RA (sequential agg, Fig 6a)", core.Options{ParallelAggregation: false, AlphaFiltering: true, HashAggregation: true, InputPruning: true}},
		{"RA (no α filter)", core.Options{ParallelAggregation: true, AlphaFiltering: false, HashAggregation: true, InputPruning: true}},
		{"RA (no hash pre-agg)", core.Options{ParallelAggregation: true, AlphaFiltering: true, HashAggregation: false, InputPruning: true}},
		{"RA (no input pruning)", core.Options{ParallelAggregation: true, AlphaFiltering: true, HashAggregation: true}},
	}
	var out []RunResult
	for _, v := range variants {
		e := &core.Engine{Opts: v.opts}
		rs, err := h.Run(queryID, datasetID, []engine.Engine{e})
		if err != nil {
			return out, err
		}
		rs[0].Engine = v.name
		out = append(out, rs...)
	}
	return out, nil
}
