package bench

import (
	"fmt"
	"strings"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/sparql"
)

// StreamRun compares one (query, dataset, engine) triple between the
// vectorized streaming plane and a fully materialising run.
type StreamRun struct {
	Query   string `json:"query"`
	Dataset string `json:"dataset"`
	Engine  string `json:"engine"`
	// RowsIdentical reports that both modes returned exactly the same
	// result rows.
	RowsIdentical bool `json:"rowsIdentical"`
	// VolumesIdentical reports that every job's deterministic volume
	// metrics matched job-for-job across modes, modulo the Streamed*
	// counters (the only fields allowed to differ — OutputStoredBytes
	// stays the notional stored size on streamed jobs, so the cost model
	// and simulated seconds are identical by construction).
	VolumesIdentical bool `json:"volumesIdentical"`
	// StreamedRecords and StreamedBatches sum over the streaming run's
	// jobs; zero means no cycle of this plan was eligible to stream.
	StreamedRecords int64 `json:"streamedRecords"`
	StreamedBatches int64 `json:"streamedBatches"`
	// MaterializedStoredBytes is the streaming run's stored output that
	// actually reached the backend; BaselineStoredBytes is the same sum
	// for the materialising run (every job contributes there).
	MaterializedStoredBytes int64 `json:"materializedStoredBytes"`
	BaselineStoredBytes     int64 `json:"baselineStoredBytes"`
	// StorageOK reports the storage gate: strictly fewer materialised
	// bytes when anything streamed, equality when nothing was eligible.
	StorageOK bool `json:"storageOK"`
	// Wall times are best-of-iters in-process milliseconds, recorded for
	// the report; wall clock is not a correctness gate.
	StreamWallMillis       float64 `json:"streamWallMillis"`
	MaterializedWallMillis float64 `json:"materializedWallMillis"`
}

// StreamReport is the result of CompareStreamingModes, serialised to
// BENCH_stream.json by benchrunner -exp stream.
type StreamReport struct {
	Iters int         `json:"iters"`
	Runs  []StreamRun `json:"runs"`
	// TotalStreamedRecords and TotalStreamedBatches aggregate the
	// streaming plane's activity; zero means streaming never engaged.
	TotalStreamedRecords int64 `json:"totalStreamedRecords"`
	TotalStreamedBatches int64 `json:"totalStreamedBatches"`
	// TotalMaterializedStoredBytes / TotalBaselineStoredBytes aggregate
	// the storage reduction across the catalog.
	TotalMaterializedStoredBytes int64 `json:"totalMaterializedStoredBytes"`
	TotalBaselineStoredBytes     int64 `json:"totalBaselineStoredBytes"`
	// AllIdentical is the conjunction of every run's RowsIdentical and
	// VolumesIdentical — the experiment's byte-identity gate.
	AllIdentical bool `json:"allIdentical"`
	// StorageReduced requires every run to pass its storage gate and the
	// catalog-wide materialised total to be strictly below the baseline.
	StorageReduced bool `json:"storageReduced"`
}

// CompareStreamingModes runs each catalog query on each engine twice per
// iteration — once with the vectorized streaming plane on and once fully
// materialising — and reports result-row identity, job-for-job volume
// identity modulo the Streamed* counters, the stored-byte reduction, and
// wall times. Any row or volume divergence is a streaming-plane bug.
func CompareStreamingModes(catalog []DictCatalogEntry, engines []engine.Engine, iters int, sizeMult float64) (*StreamReport, error) {
	if iters < 1 {
		iters = 1
	}
	streamLoader := NewLoader()
	matLoader := NewLoader()
	matLoader.DisableStreaming = true
	if sizeMult > 0 {
		streamLoader.SizeMult = sizeMult
		matLoader.SizeMult = sizeMult
	}

	report := &StreamReport{Iters: iters, AllIdentical: true, StorageReduced: true}
	for _, entry := range catalog {
		for _, id := range entry.Queries {
			q, ok := Get(id)
			if !ok {
				return nil, fmt.Errorf("bench: unknown query %q", id)
			}
			parsed, err := sparql.Parse(q.SPARQL)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", id, err)
			}
			aq, err := algebra.Build(parsed)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", id, err)
			}
			for _, e := range engines {
				run := StreamRun{Query: id, Dataset: entry.Dataset, Engine: e.Name()}
				for it := 0; it < iters; it++ {
					sRes, sWM, sWall, err := dictExec(streamLoader, entry.Dataset, e, aq)
					if err != nil {
						return nil, fmt.Errorf("bench: %s on %s via %s (streaming): %w", id, entry.Dataset, e.Name(), err)
					}
					mRes, mWM, mWall, err := dictExec(matLoader, entry.Dataset, e, aq)
					if err != nil {
						return nil, fmt.Errorf("bench: %s on %s via %s (materialised): %w", id, entry.Dataset, e.Name(), err)
					}
					if it == 0 {
						run.RowsIdentical = sRes.Equal(mRes)
						run.VolumesIdentical = volumesIdenticalModuloStreaming(sWM, mWM)
						run.StreamedRecords = sWM.StreamedRecords()
						run.StreamedBatches = sWM.StreamedBatches()
						run.MaterializedStoredBytes = sWM.MaterializedStoredBytes()
						run.BaselineStoredBytes = mWM.MaterializedStoredBytes()
						if run.StreamedRecords > 0 {
							run.StorageOK = run.MaterializedStoredBytes < run.BaselineStoredBytes
						} else {
							run.StorageOK = run.MaterializedStoredBytes == run.BaselineStoredBytes
						}
						run.StreamWallMillis = sWall
						run.MaterializedWallMillis = mWall
					} else {
						run.StreamWallMillis = min(run.StreamWallMillis, sWall)
						run.MaterializedWallMillis = min(run.MaterializedWallMillis, mWall)
					}
				}
				report.AllIdentical = report.AllIdentical && run.RowsIdentical && run.VolumesIdentical
				report.StorageReduced = report.StorageReduced && run.StorageOK
				report.TotalStreamedRecords += run.StreamedRecords
				report.TotalStreamedBatches += run.StreamedBatches
				report.TotalMaterializedStoredBytes += run.MaterializedStoredBytes
				report.TotalBaselineStoredBytes += run.BaselineStoredBytes
				report.Runs = append(report.Runs, run)
			}
		}
	}
	if report.TotalMaterializedStoredBytes >= report.TotalBaselineStoredBytes {
		report.StorageReduced = false
	}
	return report, nil
}

// volumesIdenticalModuloStreaming compares per-job volumes with the
// Streamed* counters zeroed on both sides: everything else — records,
// bytes, stored bytes, shuffle and spill volumes, simulated seconds —
// must match exactly between the streaming and materialising modes.
func volumesIdenticalModuloStreaming(a, b *mapred.WorkflowMetrics) bool {
	if len(a.Jobs) != len(b.Jobs) {
		return false
	}
	for i := range a.Jobs {
		va, vb := a.Jobs[i].Volumes(), b.Jobs[i].Volumes()
		va.StreamedRecords, va.StreamedBatches = 0, 0
		vb.StreamedRecords, vb.StreamedBatches = 0, 0
		if a.Jobs[i].Job != b.Jobs[i].Job || va != vb {
			return false
		}
	}
	return true
}

// RenderStream renders a StreamReport as an aligned table.
func RenderStream(rep *StreamReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Streaming vs materialising intermediate plane (best of %d)\n", rep.Iters)
	fmt.Fprintf(&b, "%-6s %-10s %-22s %12s %12s %12s %10s %10s %6s\n",
		"query", "dataset", "engine", "streamed", "mat bytes", "base bytes", "stream ms", "mat ms", "same")
	for _, r := range rep.Runs {
		fmt.Fprintf(&b, "%-6s %-10s %-22s %12d %12d %12d %10.1f %10.1f %6v\n",
			r.Query, r.Dataset, r.Engine, r.StreamedRecords, r.MaterializedStoredBytes,
			r.BaselineStoredBytes, r.StreamWallMillis, r.MaterializedWallMillis,
			r.RowsIdentical && r.VolumesIdentical)
	}
	fmt.Fprintf(&b, "streamed: %d records in %d batches; stored bytes %d vs %d baseline; identical: %v; reduced: %v\n",
		rep.TotalStreamedRecords, rep.TotalStreamedBatches,
		rep.TotalMaterializedStoredBytes, rep.TotalBaselineStoredBytes,
		rep.AllIdentical, rep.StorageReduced)
	return b.String()
}
