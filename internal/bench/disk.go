package bench

import (
	"fmt"
	"strings"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/sparql"
)

// DiskRun compares one (query, dataset, engine) triple between the
// in-memory and the disk-backed DFS.
type DiskRun struct {
	Query   string `json:"query"`
	Dataset string `json:"dataset"`
	Engine  string `json:"engine"`
	// RowsIdentical reports that both backends returned exactly the same
	// result rows.
	RowsIdentical bool `json:"rowsIdentical"`
	// VolumesIdentical reports that every job's deterministic volume
	// metrics — output records and bytes, stored bytes, shuffle volumes,
	// spill counters — matched job-for-job across backends. This is the
	// byte-identity gate: OutputBytes/OutputStoredBytes equality means the
	// materialised output was the same size record for record.
	VolumesIdentical bool `json:"volumesIdentical"`
	// OutputBytes and OutputStoredBytes sum the per-job materialised
	// output volumes (identical across backends when VolumesIdentical).
	OutputBytes       int64 `json:"outputBytes"`
	OutputStoredBytes int64 `json:"outputStoredBytes"`
	// Spill counters sum over the disk-backed run's jobs.
	SpillRuns  int64 `json:"spillRuns"`
	SpillBytes int64 `json:"spillBytes"`
	// Wall times are best-of-iters in-process milliseconds.
	MemWallMillis  float64 `json:"memWallMillis"`
	DiskWallMillis float64 `json:"diskWallMillis"`
}

// DiskDataset records one dataset's total stored bytes on each backend
// after the full query set ran (the DFS-level storage accounting).
type DiskDataset struct {
	Dataset         string `json:"dataset"`
	MemStoredBytes  int64  `json:"memStoredBytes"`
	DiskStoredBytes int64  `json:"diskStoredBytes"`
}

// DiskReport is the result of CompareStorageBackends, serialised to
// BENCH_disk.json by benchrunner -exp disk.
type DiskReport struct {
	Iters int `json:"iters"`
	// SpillThresholdBytes is the map-side spill threshold both backends
	// ran with, so the spill path is exercised symmetrically.
	SpillThresholdBytes int64         `json:"spillThresholdBytes"`
	Runs                []DiskRun     `json:"runs"`
	Datasets            []DiskDataset `json:"datasets"`
	// TotalSpillRuns and TotalSpillBytes aggregate the disk plane's spill
	// activity; zero means the spill path never triggered.
	TotalSpillRuns  int64 `json:"totalSpillRuns"`
	TotalSpillBytes int64 `json:"totalSpillBytes"`
	// AllIdentical is the conjunction of every run's RowsIdentical and
	// VolumesIdentical — the experiment's correctness gate.
	AllIdentical bool `json:"allIdentical"`
}

// CompareStorageBackends runs each catalog query on each engine twice per
// iteration — once on a cluster whose DFS is the in-memory backend and
// once on a disk-backed (blockstore) cluster — and reports result-row
// identity, job-for-job volume identity (including output bytes and
// stored bytes), per-dataset stored totals, spill activity, and wall
// times. Both backends run with the same spill threshold, so any
// divergence is a storage-plane bug.
func CompareStorageBackends(catalog []DictCatalogEntry, engines []engine.Engine, iters int, sizeMult float64, spillThreshold int64) (*DiskReport, error) {
	if iters < 1 {
		iters = 1
	}
	memLoader := NewLoader()
	memLoader.Storage = "mem"
	diskLoader := NewLoader()
	diskLoader.Storage = "disk"
	for _, l := range []*Loader{memLoader, diskLoader} {
		if sizeMult > 0 {
			l.SizeMult = sizeMult
		}
		l.SpillThresholdBytes = spillThreshold
	}

	report := &DiskReport{Iters: iters, SpillThresholdBytes: spillThreshold, AllIdentical: true}
	for _, entry := range catalog {
		for _, id := range entry.Queries {
			q, ok := Get(id)
			if !ok {
				return nil, fmt.Errorf("bench: unknown query %q", id)
			}
			parsed, err := sparql.Parse(q.SPARQL)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", id, err)
			}
			aq, err := algebra.Build(parsed)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", id, err)
			}
			for _, e := range engines {
				run := DiskRun{Query: id, Dataset: entry.Dataset, Engine: e.Name()}
				for it := 0; it < iters; it++ {
					memRes, memWM, memWall, err := dictExec(memLoader, entry.Dataset, e, aq)
					if err != nil {
						return nil, fmt.Errorf("bench: %s on %s via %s (mem): %w", id, entry.Dataset, e.Name(), err)
					}
					diskRes, diskWM, diskWall, err := dictExec(diskLoader, entry.Dataset, e, aq)
					if err != nil {
						return nil, fmt.Errorf("bench: %s on %s via %s (disk): %w", id, entry.Dataset, e.Name(), err)
					}
					if it == 0 {
						run.RowsIdentical = memRes.Equal(diskRes)
						run.VolumesIdentical = volumesIdentical(memWM, diskWM)
						for _, m := range diskWM.Jobs {
							run.OutputBytes += m.OutputBytes
							run.OutputStoredBytes += m.OutputStoredBytes
							run.SpillRuns += m.SpillRuns
							run.SpillBytes += m.SpillBytes
						}
						run.MemWallMillis = memWall
						run.DiskWallMillis = diskWall
					} else {
						run.MemWallMillis = min(run.MemWallMillis, memWall)
						run.DiskWallMillis = min(run.DiskWallMillis, diskWall)
					}
				}
				report.AllIdentical = report.AllIdentical && run.RowsIdentical && run.VolumesIdentical
				report.TotalSpillRuns += run.SpillRuns
				report.TotalSpillBytes += run.SpillBytes
				report.Runs = append(report.Runs, run)
			}
		}
	}
	for _, entry := range catalog {
		d := DiskDataset{Dataset: entry.Dataset}
		if c, _, err := memLoader.Load(entry.Dataset); err == nil {
			d.MemStoredBytes = c.FS.TotalStoredBytes("")
		}
		if c, _, err := diskLoader.Load(entry.Dataset); err == nil {
			d.DiskStoredBytes = c.FS.TotalStoredBytes("")
		}
		if d.MemStoredBytes != d.DiskStoredBytes {
			report.AllIdentical = false
		}
		report.Datasets = append(report.Datasets, d)
	}
	return report, nil
}

// RenderDisk renders a DiskReport as an aligned table.
func RenderDisk(rep *DiskReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "In-memory vs disk-backed DFS (best of %d, spill threshold %d bytes)\n",
		rep.Iters, rep.SpillThresholdBytes)
	fmt.Fprintf(&b, "%-6s %-10s %-22s %12s %12s %8s %10s %6s %6s\n",
		"query", "dataset", "engine", "out bytes", "stored", "spills", "mem ms", "disk ms", "same")
	for _, r := range rep.Runs {
		fmt.Fprintf(&b, "%-6s %-10s %-22s %12d %12d %8d %10.1f %6.1f %6v\n",
			r.Query, r.Dataset, r.Engine, r.OutputBytes, r.OutputStoredBytes,
			r.SpillRuns, r.MemWallMillis, r.DiskWallMillis, r.RowsIdentical && r.VolumesIdentical)
	}
	for _, d := range rep.Datasets {
		fmt.Fprintf(&b, "dataset %-10s stored bytes: mem %d, disk %d\n",
			d.Dataset, d.MemStoredBytes, d.DiskStoredBytes)
	}
	fmt.Fprintf(&b, "spill runs: %d (%d bytes); outputs identical: %v\n",
		rep.TotalSpillRuns, rep.TotalSpillBytes, rep.AllIdentical)
	return b.String()
}
