package bench

import (
	"fmt"
	"os"
	"sync"

	"rapidanalytics/internal/datagen"
	"rapidanalytics/internal/dfs"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/rdf"
)

// DatasetSpec describes one evaluation dataset: its generator, the paper's
// cluster configuration for it, and the paper-scale triple count used to
// extrapolate the cost model (DataScale = PaperTriples / generated
// triples).
type DatasetSpec struct {
	// ID names the dataset ("bsbm-500k", "bsbm-2m", "chem", "pubmed").
	ID string
	// Queries of this catalog dataset run on it.
	CatalogName string
	// Generate builds the graph; sizeMult scales the primary entity count
	// (1 = the default laptop size). The cost model's DataScale adjusts
	// automatically: paper-scale simulated volumes stay comparable.
	Generate func(sizeMult float64) *rdf.Graph
	// Cluster returns the simulated cluster configuration given the data
	// scale.
	Cluster func(dataScale float64) mapred.ClusterConfig
	// PaperTriples is the original dataset's approximate triple count.
	PaperTriples float64
}

// Specs lists the paper's four dataset deployments.
func Specs() []DatasetSpec {
	return []DatasetSpec{
		{
			ID:          "bsbm-500k",
			CatalogName: "bsbm",
			Generate: func(m float64) *rdf.Graph {
				cfg := datagen.BSBMSmall()
				cfg.Products = scaled(cfg.Products, m)
				return datagen.GenerateBSBM(cfg)
			},
			Cluster: mapred.VCL10,
			// BSBM-500K: 43GB, ~175M triples, 10-node cluster.
			PaperTriples: 175e6,
		},
		{
			ID:          "bsbm-2m",
			CatalogName: "bsbm",
			Generate: func(m float64) *rdf.Graph {
				cfg := datagen.BSBMLarge()
				cfg.Products = scaled(cfg.Products, m)
				return datagen.GenerateBSBM(cfg)
			},
			Cluster: mapred.VCL50,
			// BSBM-2M: 172GB, ~700M triples, 50-node cluster.
			PaperTriples: 700e6,
		},
		{
			ID:          "bsbm-zipf",
			CatalogName: "bsbm-skew",
			Generate: func(m float64) *rdf.Graph {
				cfg := datagen.BSBMZipf()
				cfg.Products = scaled(cfg.Products, m)
				return datagen.GenerateBSBMZipf(cfg)
			},
			Cluster: mapred.VCL10,
			// Same deployment as BSBM-500K; the skew, not the size, is the
			// point of this dataset.
			PaperTriples: 175e6,
		},
		{
			ID:          "bsbm-supernode",
			CatalogName: "bsbm-skew",
			Generate: func(m float64) *rdf.Graph {
				cfg := datagen.BSBMSupernode()
				cfg.Products = scaled(cfg.Products, m)
				return datagen.GenerateBSBMSupernode(cfg)
			},
			Cluster:      mapred.VCL10,
			PaperTriples: 175e6,
		},
		{
			ID:          "chem",
			CatalogName: "chem",
			Generate: func(m float64) *rdf.Graph {
				cfg := datagen.ChemDefault()
				cfg.Compounds = scaled(cfg.Compounds, m)
				return datagen.GenerateChem(cfg)
			},
			Cluster: mapred.VCL10,
			// Chem2Bio2RDF: 60GB, ~340M triples, 10-node cluster.
			PaperTriples: 340e6,
		},
		{
			ID:          "pubmed",
			CatalogName: "pubmed",
			Generate: func(m float64) *rdf.Graph {
				cfg := datagen.PubMedDefault()
				cfg.Publications = scaled(cfg.Publications, m)
				return datagen.GeneratePubMed(cfg)
			},
			Cluster: mapred.VCL60,
			// PubMed (Bio2RDF r2): 230GB, ~1.7B triples, 60-node cluster.
			PaperTriples: 1.7e9,
		},
	}
}

// SpecByID returns the dataset spec with the given id.
func SpecByID(id string) (DatasetSpec, bool) {
	for _, s := range Specs() {
		if s.ID == id {
			return s, true
		}
	}
	return DatasetSpec{}, false
}

func scaled(base int, mult float64) int {
	if mult <= 0 {
		mult = 1
	}
	n := int(float64(base) * mult)
	if n < 1 {
		n = 1
	}
	return n
}

// loadedDataset caches a generated and loaded dataset together with its
// cluster.
type loadedDataset struct {
	spec    DatasetSpec
	cluster *mapred.Cluster
	ds      *engine.Dataset
}

// Loader generates and loads datasets on demand, caching them per spec id.
// Engines write temp files into each dataset's cluster FS; those are
// namespaced per run, so caching the base dataset is safe.
type Loader struct {
	// SizeMult scales every dataset's primary entity count (default 1).
	SizeMult float64
	// ReduceWorkers overrides the engine's shuffle/reduce worker pool for
	// every loaded cluster: 0 means one worker per CPU, 1 forces the
	// sequential reduce path. Output and volume metrics are identical for
	// every setting.
	ReduceWorkers int
	// Lexical loads datasets without dictionary encoding (the original
	// lexical data plane). Result rows are identical either way; volumes
	// differ.
	Lexical bool
	// Storage selects the DFS backend for every loaded cluster: "mem",
	// "disk", or "" to honor the RAPID_STORAGE environment default.
	Storage string
	// DataDir roots disk-backend storage; empty uses a fresh temp dir.
	DataDir string
	// Shards is the disk backend's shard count (0 = blockstore default).
	Shards int
	// SpillThresholdBytes bounds per-map-task buffered shuffle output (0
	// disables spilling). See mapred.ClusterConfig.SpillThresholdBytes.
	SpillThresholdBytes int64
	// DisableStreaming turns off the vectorized streaming plane, forcing
	// every intermediate output to materialise into the storage backend.
	// Result rows and volume metrics are identical either way; see
	// mapred.ClusterConfig.Streaming.
	DisableStreaming bool

	mu     sync.Mutex
	loaded map[string]*loadedDataset
}

// NewLoader returns an empty loader at the default size.
func NewLoader() *Loader { return &Loader{SizeMult: 1, loaded: map[string]*loadedDataset{}} }

// Load returns the cluster and dataset for a spec id, generating it on
// first use.
func (l *Loader) Load(id string) (*mapred.Cluster, *engine.Dataset, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if d, ok := l.loaded[id]; ok {
		return d.cluster, d.ds, nil
	}
	spec, ok := SpecByID(id)
	if !ok {
		return nil, nil, fmt.Errorf("bench: unknown dataset %q", id)
	}
	g := spec.Generate(l.SizeMult)
	scale := spec.PaperTriples / float64(g.Len())
	cfg := spec.Cluster(scale)
	cfg.ExecReduceWorkers = l.ReduceWorkers
	cfg.SpillThresholdBytes = l.SpillThresholdBytes
	cfg.Streaming = !l.DisableStreaming
	c, err := l.newCluster(cfg, id)
	if err != nil {
		return nil, nil, err
	}
	ds, err := engine.LoadWith(c, spec.ID, g, engine.LoadOptions{DictionaryEncoding: !l.Lexical})
	if err != nil {
		return nil, nil, fmt.Errorf("bench: loading %s: %w", id, err)
	}
	l.loaded[id] = &loadedDataset{spec: spec, cluster: c, ds: ds}
	return c, ds, nil
}

// newCluster builds the cluster for one dataset, honoring the loader's
// storage selection.
func (l *Loader) newCluster(cfg mapred.ClusterConfig, id string) (*mapred.Cluster, error) {
	switch l.Storage {
	case "":
		return mapred.NewCluster(cfg), nil
	case "mem":
		return mapred.NewClusterFS(cfg, dfs.New()), nil
	case "disk":
		dir, err := os.MkdirTemp(l.DataDir, "rapidfs-"+id+"-")
		if err != nil {
			return nil, fmt.Errorf("bench: disk storage: %w", err)
		}
		fs, err := dfs.NewDisk(dir, l.Shards)
		if err != nil {
			return nil, fmt.Errorf("bench: disk storage: %w", err)
		}
		return mapred.NewClusterFS(cfg, fs), nil
	default:
		return nil, fmt.Errorf("bench: unknown storage backend %q", l.Storage)
	}
}

// DatasetsFor returns the spec ids a catalog query runs on: every spec
// whose CatalogName matches the query's dataset (BSBM queries run at both
// scales, skew queries on both skewed graphs, the others on their single
// deployment).
func DatasetsFor(q Query) []string {
	var ids []string
	for _, s := range Specs() {
		if s.CatalogName == q.Dataset {
			ids = append(ids, s.ID)
		}
	}
	return ids
}
