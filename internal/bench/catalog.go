// Package bench holds the paper's evaluation workload: the query catalog
// (single-grouping G1–G9 and multi-grouping MG1–MG18; the paper's numbering
// has no MG5), the dataset specifications, the harness that runs every
// engine over every query, and the report renderers that regenerate each
// table and figure of §5.
package bench

import (
	"fmt"

	"rapidanalytics/internal/datagen"
)

// Query is one catalog entry.
type Query struct {
	// ID is the paper's query identifier ("G1", "MG13", ...).
	ID string
	// Dataset names the dataset the query runs on ("bsbm", "chem",
	// "pubmed"). BSBM queries run on both BSBM scales.
	Dataset string
	// Description paraphrases the paper's query intent.
	Description string
	// SPARQL is the query text.
	SPARQL string
}

const bsbmPrefix = "PREFIX bsbm: <" + datagen.BSBM + ">\n"
const chemPrefix = "PREFIX c: <" + datagen.Chem + ">\n"
const pmPrefix = "PREFIX pm: <" + datagen.PubMed + ">\n"

// bsbmSingle builds the G1–G4 template: total/average price of offers for
// one product type, grouped by ALL or by feature.
func bsbmSingle(ptype string, byFeature bool) string {
	if byFeature {
		return bsbmPrefix + fmt.Sprintf(`SELECT ?f (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) {
  ?p a bsbm:%s ; bsbm:label ?l ; bsbm:productFeature ?f .
  ?off bsbm:product ?p ; bsbm:price ?pr .
} GROUP BY ?f`, ptype)
	}
	return bsbmPrefix + fmt.Sprintf(`SELECT (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) {
  ?p a bsbm:%s ; bsbm:label ?l .
  ?off bsbm:product ?p ; bsbm:price ?pr .
}`, ptype)
}

// bsbmMG12 builds MG1/MG2 (BSBM BI use case): average price per feature
// vs. across all features.
func bsbmMG12(ptype string) string {
	return bsbmPrefix + fmt.Sprintf(`SELECT ?f ?sumF ?cntF ?sumT ?cntT {
  { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a bsbm:%[1]s ; bsbm:label ?l2 ; bsbm:productFeature ?f .
      ?off2 bsbm:product ?p2 ; bsbm:price ?pr2 .
    } GROUP BY ?f }
  { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a bsbm:%[1]s ; bsbm:label ?l1 .
      ?off1 bsbm:product ?p1 ; bsbm:price ?pr .
    } }
}`, ptype)
}

// bsbmMG34 builds MG3/MG4: average price per country-feature vs. per
// country across all features.
func bsbmMG34(ptype string) string {
	return bsbmPrefix + fmt.Sprintf(`SELECT ?f ?c ?sumF ?cntF ?sumT ?cntT {
  { SELECT ?f ?c (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a bsbm:%[1]s ; bsbm:label ?l2 ; bsbm:productFeature ?f .
      ?off2 bsbm:product ?p2 ; bsbm:price ?pr2 ; bsbm:vendor ?v2 .
      ?v2 bsbm:country ?c .
    } GROUP BY ?f ?c }
  { SELECT ?c (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a bsbm:%[1]s ; bsbm:label ?l1 .
      ?off1 bsbm:product ?p1 ; bsbm:price ?pr ; bsbm:vendor ?v1 .
      ?v1 bsbm:country ?c .
    } GROUP BY ?c }
}`, ptype)
}

// Catalog is the full evaluated workload, in the paper's order.
var Catalog = []Query{
	// ——— Table 3 left: BSBM single-grouping queries ———
	{"G1", "bsbm", "Offer stats for ProductType1 (lo selectivity), GROUP BY ALL", bsbmSingle("ProductType1", false)},
	{"G2", "bsbm", "Offer stats for ProductType9 (hi selectivity), GROUP BY ALL", bsbmSingle("ProductType9", false)},
	{"G3", "bsbm", "Offer stats for ProductType1 per feature", bsbmSingle("ProductType1", true)},
	{"G4", "bsbm", "Offer stats for ProductType9 per feature", bsbmSingle("ProductType9", true)},

	// ——— Table 3 right: Chem2Bio2RDF single-grouping queries ———
	{"G5", "chem", "Assays per compound sharing targets with Dexamethasone", chemPrefix + `
SELECT ?cid (COUNT(?cid) AS ?active_assays) {
  ?b c:CID ?cid ; c:outcome ?a ; c:Score ?s1 ; c:gi ?gi .
  ?u c:gi ?gi ; c:geneSymbol ?g .
  ?di c:gene ?g ; c:DBID ?dr .
  ?dr c:Generic_Name "Dexamethasone" .
} GROUP BY ?cid`},
	{"G6", "chem", "Compounds active toward MAPK-pathway targets", chemPrefix + `
SELECT ?cid (COUNT(?cid) AS ?active_assays) {
  ?b c:CID ?cid ; c:outcome ?a ; c:Score ?s1 ; c:gi ?gi .
  ?u c:gi ?gi .
  ?pathway c:protein ?u ; c:Pathway_name ?pname .
  FILTER regex(?pname, "MAPK signaling pathway", "i")
} GROUP BY ?cid`},
	{"G7", "chem", "Pathways containing targets of hepatomegaly-linked drugs", chemPrefix + `
SELECT ?pid (COUNT(?pid) AS ?count) {
  ?sider c:side_effect ?se ; c:cid ?cid .
  ?dr c:CID ?cid .
  ?target c:DBID ?dr ; c:SwissProt_ID ?u .
  ?pathway c:protein ?u ; c:pathwayid ?pid .
  FILTER regex(?se, "hepatomegaly", "i")
} GROUP BY ?pid`},
	{"G8", "chem", "Active assays per gene symbol", chemPrefix + `
SELECT ?g (COUNT(?b) AS ?assays) {
  ?b c:CID ?cid ; c:outcome "active" ; c:Score ?s1 ; c:gi ?gi .
  ?u c:gi ?gi ; c:geneSymbol ?g .
} GROUP BY ?g`},
	{"G9", "chem", "MEDLINE publications per gene (large VP tables)", chemPrefix + `
SELECT ?gs (COUNT(?pmid) AS ?pubs) {
  ?g c:geneSymbol ?gs .
  ?pmid c:gene ?g ; c:side_effect ?se .
} GROUP BY ?gs`},

	// ——— Figure 8(a,b): BSBM multi-grouping queries ———
	{"MG1", "bsbm", "Price per feature vs. across features, ProductType1 (lo)", bsbmMG12("ProductType1")},
	{"MG2", "bsbm", "Price per feature vs. across features, ProductType9 (hi)", bsbmMG12("ProductType9")},
	{"MG3", "bsbm", "Price per country-feature vs. per country, ProductType1 (lo)", bsbmMG34("ProductType1")},
	{"MG4", "bsbm", "Price per country-feature vs. per country, ProductType9 (hi)", bsbmMG34("ProductType9")},

	// ——— Figure 8(c): Chem2Bio2RDF multi-grouping queries ———
	{"MG6", "chem", "Targets per compound-gene vs. per compound", chemPrefix + `
SELECT ?cid ?g1 ?aPerCG ?aPerC {
  { SELECT ?cid ?g1 (COUNT(?cid) AS ?aPerCG)
    { ?b1 c:CID ?cid ; c:outcome ?a1 ; c:Score ?s1 ; c:gi ?gi1 .
      ?u1 c:gi ?gi1 ; c:geneSymbol ?g1 .
      ?di1 c:gene ?g1 ; c:DBID ?dr1 .
    } GROUP BY ?cid ?g1 }
  { SELECT ?cid (COUNT(?cid) AS ?aPerC)
    { ?b c:CID ?cid ; c:outcome ?a ; c:Score ?s ; c:gi ?gi .
      ?u c:gi ?gi ; c:geneSymbol ?g .
      ?di c:gene ?g ; c:DBID ?dr .
    } GROUP BY ?cid }
}`},
	{"MG7", "chem", "Targets per compound-drug vs. per compound", chemPrefix + `
SELECT ?cid ?dr1 ?aPerCD ?aPerC {
  { SELECT ?cid ?dr1 (COUNT(?cid) AS ?aPerCD)
    { ?b1 c:CID ?cid ; c:outcome ?a1 ; c:Score ?s1 ; c:gi ?gi1 .
      ?u1 c:gi ?gi1 ; c:geneSymbol ?g1 .
      ?di1 c:gene ?g1 ; c:DBID ?dr1 .
    } GROUP BY ?cid ?dr1 }
  { SELECT ?cid (COUNT(?cid) AS ?aPerC)
    { ?b c:CID ?cid ; c:outcome ?a ; c:Score ?s ; c:gi ?gi .
      ?u c:gi ?gi ; c:geneSymbol ?g .
      ?di c:gene ?g ; c:DBID ?dr .
    } GROUP BY ?cid }
}`},
	{"MG8", "chem", "Targets per compound-gene vs. overall total", chemPrefix + `
SELECT ?cid ?g1 ?aPerCG ?aT {
  { SELECT ?cid ?g1 (COUNT(?cid) AS ?aPerCG)
    { ?b1 c:CID ?cid ; c:outcome ?a1 ; c:Score ?s1 ; c:gi ?gi1 .
      ?u1 c:gi ?gi1 ; c:geneSymbol ?g1 .
      ?di1 c:gene ?g1 ; c:DBID ?dr1 .
    } GROUP BY ?cid ?g1 }
  { SELECT (COUNT(?cid2) AS ?aT)
    { ?b c:CID ?cid2 ; c:outcome ?a ; c:Score ?s ; c:gi ?gi .
      ?u c:gi ?gi ; c:geneSymbol ?g .
      ?di c:gene ?g ; c:DBID ?dr .
    } }
}`},
	{"MG9", "chem", "MEDLINE publications per gene vs. total", chemPrefix + `
SELECT ?gs ?pPerGene ?pT {
  { SELECT ?gs (COUNT(?gs) AS ?pPerGene)
    { ?g c:geneSymbol ?gs .
      ?pmid c:gene ?g ; c:side_effect ?se .
    } GROUP BY ?gs }
  { SELECT (COUNT(?gs1) AS ?pT)
    { ?g1 c:geneSymbol ?gs1 .
      ?pmid1 c:gene ?g1 ; c:side_effect ?se1 .
    } }
}`},
	{"MG10", "chem", "Publications per disease-gene vs. per gene", chemPrefix + `
SELECT ?d ?gs ?pPerDG ?pPerG {
  { SELECT ?d ?gs (COUNT(?pmid) AS ?pPerDG)
    { ?g c:geneSymbol ?gs .
      ?pmid c:gene ?g ; c:side_effect ?se ; c:disease ?d .
    } GROUP BY ?d ?gs }
  { SELECT ?gs (COUNT(?pmid1) AS ?pPerG)
    { ?g1 c:geneSymbol ?gs .
      ?pmid1 c:gene ?g1 ; c:side_effect ?se1 .
    } GROUP BY ?gs }
}`},

	// ——— Table 4: PubMed multi-grouping queries ———
	{"MG11", "pubmed", "Journal pubs funded per grant country vs. total", pmPrefix + `
SELECT ?c ?cntC ?cntT {
  { SELECT ?c (COUNT(?g) AS ?cntC)
    { ?pub pm:journal ?j ; pm:grant ?g .
      ?g pm:grant_agency ?ga ; pm:grant_country ?c .
    } GROUP BY ?c }
  { SELECT (COUNT(?g1) AS ?cntT)
    { ?pub1 pm:journal ?j1 ; pm:grant ?g1 .
      ?g1 pm:grant_agency ?ga1 .
    } }
}`},
	{"MG12", "pubmed", "Grants per country-pubtype vs. per country", pmPrefix + `
SELECT ?c ?pt ?cntCP ?cntC {
  { SELECT ?c ?pt (COUNT(?g) AS ?cntCP)
    { ?pub pm:pub_type ?pt ; pm:grant ?g .
      ?g pm:grant_agency ?ga ; pm:grant_country ?c .
    } GROUP BY ?c ?pt }
  { SELECT ?c (COUNT(?g1) AS ?cntC)
    { ?pub1 pm:pub_type ?pt1 ; pm:grant ?g1 .
      ?g1 pm:grant_country ?c .
    } GROUP BY ?c }
}`},
	{"MG13", "pubmed", "MeSH headings per author-pubtype vs. per pubtype (materialisation blow-up)", pmPrefix + `
SELECT ?a ?pty ?perAPT ?perPT {
  { SELECT ?a ?pty (COUNT(?m) AS ?perAPT)
    { ?p pm:pub_type ?pty ; pm:mesh_heading ?m ; pm:author ?a .
      ?a pm:last_name ?ln .
    } GROUP BY ?a ?pty }
  { SELECT ?pty (COUNT(?m1) AS ?perPT)
    { ?p1 pm:pub_type ?pty ; pm:mesh_heading ?m1 ; pm:author ?a1 .
      ?a1 pm:last_name ?ln1 .
    } GROUP BY ?pty }
}`},
	{"MG14", "pubmed", "Chemicals per author-pubtype vs. per pubtype", pmPrefix + `
SELECT ?a ?pty ?perAPT ?perPT {
  { SELECT ?a ?pty (COUNT(?ch) AS ?perAPT)
    { ?p pm:pub_type ?pty ; pm:chemical ?ch ; pm:author ?a .
      ?a pm:last_name ?ln .
    } GROUP BY ?a ?pty }
  { SELECT ?pty (COUNT(?ch1) AS ?perPT)
    { ?p1 pm:pub_type ?pty ; pm:chemical ?ch1 ; pm:author ?a1 .
      ?a1 pm:last_name ?ln1 .
    } GROUP BY ?pty }
}`},
	{"MG15", "pubmed", "Chemicals per author for Journal Articles (lo selectivity) vs. total", pmPrefix + `
SELECT ?ln ?perA ?allA {
  { SELECT ?ln (COUNT(?ch) AS ?perA)
    { ?pub pm:pub_type "Journal Article" ; pm:chemical ?ch ; pm:author ?a .
      ?a pm:last_name ?ln .
    } GROUP BY ?ln }
  { SELECT (COUNT(?ch1) AS ?allA)
    { ?pub1 pm:pub_type "Journal Article" ; pm:chemical ?ch1 ; pm:author ?a1 .
      ?a1 pm:last_name ?ln1 .
    } }
}`},
	{"MG16", "pubmed", "Chemicals per author for News items (hi selectivity) vs. total", pmPrefix + `
SELECT ?ln ?perA ?allA {
  { SELECT ?ln (COUNT(?ch) AS ?perA)
    { ?pub pm:pub_type "News" ; pm:chemical ?ch ; pm:author ?a .
      ?a pm:last_name ?ln .
    } GROUP BY ?ln }
  { SELECT (COUNT(?ch1) AS ?allA)
    { ?pub1 pm:pub_type "News" ; pm:chemical ?ch1 ; pm:author ?a1 .
      ?a1 pm:last_name ?ln1 .
    } }
}`},
	{"MG17", "pubmed", "Journal-article grants per country vs. overall", pmPrefix + `
SELECT ?c ?perC ?total {
  { SELECT ?c (COUNT(?g) AS ?perC)
    { ?pub pm:journal ?j ; pm:pub_type "Journal Article" ; pm:grant ?g .
      ?g pm:grant_agency ?ga ; pm:grant_country ?c .
    } GROUP BY ?c }
  { SELECT (COUNT(?g1) AS ?total)
    { ?pub1 pm:journal ?j1 ; pm:pub_type "Journal Article" ; pm:grant ?g1 .
      ?g1 pm:grant_agency ?ga1 .
    } }
}`},
	{"MG18", "pubmed", "Journal articles per author-country vs. per country", pmPrefix + `
SELECT ?c ?a ?perAC ?perC {
  { SELECT ?c ?a (COUNT(?g) AS ?perAC)
    { ?p pm:pub_type "Journal Article" ; pm:author ?a ; pm:grant ?g .
      ?g pm:grant_agency ?ga ; pm:grant_country ?c .
    } GROUP BY ?c ?a }
  { SELECT ?c (COUNT(?g1) AS ?perC)
    { ?pub1 pm:pub_type "Journal Article" ; pm:grant ?g1 .
      ?g1 pm:grant_agency ?ga1 ; pm:grant_country ?c .
    } GROUP BY ?c }
}`},

	// ——— Extension (not in the paper): the α-Join ablation query. Its two
	// patterns carry *disjoint* secondary properties (productFeature vs
	// validTo — Table 2's rows 3-4 shape), so the α-Join actually discards
	// combinations matching neither pattern. The paper's own MG queries are
	// roll-ups (one pattern subsumes the other), where the α condition of
	// the subsumed pattern is trivially true.
	{"MGA", "bsbm", "(extension) price per feature vs. price per offer validity month — disjoint secondaries", bsbmPrefix + `SELECT ?f ?cntF ?vt ?cntV {
  { SELECT ?f (COUNT(?pr2) AS ?cntF)
    { ?p2 a bsbm:ProductType1 ; bsbm:label ?l2 ; bsbm:productFeature ?f .
      ?off2 bsbm:product ?p2 ; bsbm:price ?pr2 .
    } GROUP BY ?f }
  { SELECT ?vt (COUNT(?pr) AS ?cntV)
    { ?p1 a bsbm:ProductType1 ; bsbm:label ?l1 .
      ?off1 bsbm:product ?p1 ; bsbm:price ?pr ; bsbm:validTo ?vt .
    } GROUP BY ?vt }
}`},

	// ——— Extension (not in the paper): planner stressors, run only by the
	// planner experiment's skewed datasets (bsbm-zipf, bsbm-supernode). Both
	// are written with the offer star FIRST, so the fixed star-0-first
	// heuristic leads with the largest relation while the cost-based order
	// can start from a selective star instead. "IN" is the rare country the
	// skewed generators pin to exactly two vendors.
	{"SK1", "bsbm-skew", "(extension) offer stats for rare-country vendors of ProductType1 — heuristic leads with the offer star", bsbmPrefix + `SELECT ?vl (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) {
  ?off bsbm:product ?p ; bsbm:price ?pr ; bsbm:vendor ?v .
  ?p a bsbm:ProductType1 ; bsbm:label ?l .
  ?v bsbm:country "IN" ; bsbm:label ?vl .
} GROUP BY ?vl`},
	{"SK2", "bsbm-skew", "(extension) offers per country for ProductType9 with producer labels — the super-node graph makes the type9 estimate wrong by >10x, forcing a mid-query re-plan", bsbmPrefix + `SELECT ?c (COUNT(?pr) AS ?cnt) {
  ?off bsbm:product ?p ; bsbm:price ?pr ; bsbm:vendor ?v .
  ?p a bsbm:ProductType9 ; bsbm:label ?l ; bsbm:producer ?mk .
  ?v bsbm:country ?c .
  ?mk bsbm:label ?ml .
} GROUP BY ?c`},
}

// Get returns the catalog query with the given id.
func Get(id string) (Query, bool) {
	for _, q := range Catalog {
		if q.ID == id {
			return q, true
		}
	}
	return Query{}, false
}

// IDs returns the catalog's query ids in order.
func IDs() []string {
	out := make([]string, len(Catalog))
	for i, q := range Catalog {
		out[i] = q.ID
	}
	return out
}
