package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/sparql"
)

// DictCatalogEntry pairs a dataset deployment with the catalog queries the
// dictionary experiment evaluates on it.
type DictCatalogEntry struct {
	Dataset string
	Queries []string
}

// MGCatalog returns the full multi-grouping catalog on its paper
// deployments: MG1–MG4 on BSBM-500K, MG6–MG10 on Chem2Bio2RDF, MG11–MG18 on
// PubMed.
func MGCatalog() []DictCatalogEntry {
	return []DictCatalogEntry{
		{Dataset: "bsbm-500k", Queries: []string{"MG1", "MG2", "MG3", "MG4"}},
		{Dataset: "chem", Queries: []string{"MG6", "MG7", "MG8", "MG9", "MG10"}},
		{Dataset: "pubmed", Queries: []string{"MG11", "MG12", "MG13", "MG14", "MG15", "MG16", "MG17", "MG18"}},
	}
}

// DictCycle is one MR cycle's shuffle volume in both planes. Cycles pair up
// by execution order; both planes run the same physical plan shape, so the
// job names match.
type DictCycle struct {
	Job              string `json:"job"`
	LexShuffleBytes  int64  `json:"lexShuffleBytes"`
	DictShuffleBytes int64  `json:"dictShuffleBytes"`
	// DeltaBytes is lexical minus dictionary shuffle bytes for the cycle.
	DeltaBytes int64 `json:"deltaBytes"`
}

// DictRun compares one (query, dataset, engine) triple between the lexical
// and the dictionary-encoded data plane.
type DictRun struct {
	Query   string `json:"query"`
	Dataset string `json:"dataset"`
	Engine  string `json:"engine"`
	// RowsIdentical reports that both planes returned exactly the same
	// result rows (the dictionary plane must be invisible in results).
	RowsIdentical bool `json:"rowsIdentical"`
	// Shuffle volumes are summed over all non-map-only cycles.
	LexShuffleBytes     int64   `json:"lexShuffleBytes"`
	DictShuffleBytes    int64   `json:"dictShuffleBytes"`
	ShuffleReductionPct float64 `json:"shuffleReductionPct"`
	// Wall times are best-of-iters in-process milliseconds; sim seconds are
	// the deterministic cost-model estimates.
	LexWallMillis  float64 `json:"lexWallMillis"`
	DictWallMillis float64 `json:"dictWallMillis"`
	WallSpeedup    float64 `json:"wallSpeedup"`
	LexSimSeconds  float64 `json:"lexSimSeconds"`
	DictSimSeconds float64 `json:"dictSimSeconds"`
	SimSpeedup     float64 `json:"simSpeedup"`
	// Cycles carries the per-cycle shuffle-byte deltas (from the per-job
	// volume metrics the shuffle spans also record).
	Cycles []DictCycle `json:"cycles"`
}

// DictReport is the result of CompareDictModes, serialised to
// BENCH_dict.json by benchrunner -exp dict.
type DictReport struct {
	Iters int       `json:"iters"`
	Runs  []DictRun `json:"runs"`
	// Totals aggregate shuffled bytes over every run.
	TotalLexShuffleBytes  int64   `json:"totalLexShuffleBytes"`
	TotalDictShuffleBytes int64   `json:"totalDictShuffleBytes"`
	ShuffleReductionPct   float64 `json:"shuffleReductionPct"`
	// Geometric means over the per-run ratios.
	MeanWallSpeedup float64 `json:"meanWallSpeedup"`
	MeanSimSpeedup  float64 `json:"meanSimSpeedup"`
	// AllRowsIdentical is the conjunction of every run's RowsIdentical —
	// the experiment's correctness gate.
	AllRowsIdentical bool `json:"allRowsIdentical"`
}

// CompareDictModes runs each catalog query on each engine twice per
// iteration — once over a lexical-plane load of the dataset and once over a
// dictionary-encoded load — and reports result-row identity, total and
// per-cycle shuffle-byte reductions, and wall/simulated-time speedups. Both
// loaders generate the same deterministic graphs (scaled by sizeMult), so
// any row divergence is a plane bug.
func CompareDictModes(catalog []DictCatalogEntry, engines []engine.Engine, iters int, sizeMult float64) (*DictReport, error) {
	if iters < 1 {
		iters = 1
	}
	lexLoader := NewLoader()
	lexLoader.Lexical = true
	dictLoader := NewLoader()
	if sizeMult > 0 {
		lexLoader.SizeMult = sizeMult
		dictLoader.SizeMult = sizeMult
	}

	report := &DictReport{Iters: iters, AllRowsIdentical: true}
	for _, entry := range catalog {
		for _, id := range entry.Queries {
			q, ok := Get(id)
			if !ok {
				return nil, fmt.Errorf("bench: unknown query %q", id)
			}
			parsed, err := sparql.Parse(q.SPARQL)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", id, err)
			}
			aq, err := algebra.Build(parsed)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", id, err)
			}
			for _, e := range engines {
				run := DictRun{Query: id, Dataset: entry.Dataset, Engine: e.Name()}
				for it := 0; it < iters; it++ {
					lexRes, lexWM, lexWall, err := dictExec(lexLoader, entry.Dataset, e, aq)
					if err != nil {
						return nil, fmt.Errorf("bench: %s on %s via %s (lexical): %w", id, entry.Dataset, e.Name(), err)
					}
					dictRes, dictWM, dictWall, err := dictExec(dictLoader, entry.Dataset, e, aq)
					if err != nil {
						return nil, fmt.Errorf("bench: %s on %s via %s (dictionary): %w", id, entry.Dataset, e.Name(), err)
					}
					if it == 0 {
						// Compare as row sets: reducers see group keys in
						// plane order, so unordered results can legitimately
						// arrive in different row order (ORDER BY queries
						// sort after the decode boundary, identically).
						run.RowsIdentical = lexRes.Equal(dictRes)
						run.LexShuffleBytes = lexWM.ShuffleBytes()
						run.DictShuffleBytes = dictWM.ShuffleBytes()
						run.LexSimSeconds = lexWM.SimSeconds()
						run.DictSimSeconds = dictWM.SimSeconds()
						run.Cycles = dictCycles(lexWM, dictWM)
						run.LexWallMillis = lexWall
						run.DictWallMillis = dictWall
					} else {
						run.LexWallMillis = min(run.LexWallMillis, lexWall)
						run.DictWallMillis = min(run.DictWallMillis, dictWall)
					}
				}
				if run.LexShuffleBytes > 0 {
					run.ShuffleReductionPct = 100 * (1 - float64(run.DictShuffleBytes)/float64(run.LexShuffleBytes))
				}
				if run.DictWallMillis > 0 {
					run.WallSpeedup = run.LexWallMillis / run.DictWallMillis
				}
				if run.DictSimSeconds > 0 {
					run.SimSpeedup = run.LexSimSeconds / run.DictSimSeconds
				}
				report.AllRowsIdentical = report.AllRowsIdentical && run.RowsIdentical
				report.TotalLexShuffleBytes += run.LexShuffleBytes
				report.TotalDictShuffleBytes += run.DictShuffleBytes
				report.Runs = append(report.Runs, run)
			}
		}
	}
	if report.TotalLexShuffleBytes > 0 {
		report.ShuffleReductionPct = 100 * (1 - float64(report.TotalDictShuffleBytes)/float64(report.TotalLexShuffleBytes))
	}
	report.MeanWallSpeedup = geoMeanOf(report.Runs, func(r DictRun) float64 { return r.WallSpeedup })
	report.MeanSimSpeedup = geoMeanOf(report.Runs, func(r DictRun) float64 { return r.SimSpeedup })
	return report, nil
}

func dictExec(l *Loader, datasetID string, e engine.Engine, aq *algebra.AnalyticalQuery) (*engine.Result, *mapred.WorkflowMetrics, float64, error) {
	c, ds, err := l.Load(datasetID)
	if err != nil {
		return nil, nil, 0, err
	}
	start := time.Now()
	res, wm, err := e.Execute(c, ds, aq)
	if err != nil {
		return nil, nil, 0, err
	}
	return res, wm, float64(time.Since(start).Microseconds()) / 1000, nil
}

// dictCycles pairs the two planes' non-map-only cycles by execution order.
// Plan shapes can differ across planes only in map-join choices, which never
// shuffle; unpaired trailing cycles are reported with a zero counterpart.
func dictCycles(lex, dict *mapred.WorkflowMetrics) []DictCycle {
	shuffling := func(w *mapred.WorkflowMetrics) []*mapred.Metrics {
		var out []*mapred.Metrics
		for _, m := range w.Jobs {
			if !m.MapOnly {
				out = append(out, m)
			}
		}
		return out
	}
	ls, ds := shuffling(lex), shuffling(dict)
	n := max(len(ls), len(ds))
	out := make([]DictCycle, 0, n)
	for i := 0; i < n; i++ {
		var c DictCycle
		if i < len(ls) {
			c.Job = ls[i].Job
			c.LexShuffleBytes = ls[i].MapOutputBytes
		}
		if i < len(ds) {
			c.Job = ds[i].Job
			c.DictShuffleBytes = ds[i].MapOutputBytes
		}
		c.DeltaBytes = c.LexShuffleBytes - c.DictShuffleBytes
		out = append(out, c)
	}
	return out
}

func geoMeanOf(runs []DictRun, f func(DictRun) float64) float64 {
	if len(runs) == 0 {
		return 0
	}
	prod := 1.0
	for _, r := range runs {
		v := f(r)
		if v <= 0 {
			return 0
		}
		prod *= v
	}
	return math.Pow(prod, 1/float64(len(runs)))
}

// RenderDict renders a DictReport as an aligned table.
func RenderDict(rep *DictReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lexical vs dictionary-encoded data plane (best of %d)\n", rep.Iters)
	fmt.Fprintf(&b, "%-6s %-10s %-22s %12s %12s %8s %8s %8s %6s\n",
		"query", "dataset", "engine", "lex shuffle", "dict shuffle", "reduce%", "wall x", "sim x", "rows=")
	for _, r := range rep.Runs {
		fmt.Fprintf(&b, "%-6s %-10s %-22s %12d %12d %7.1f%% %7.2fx %7.2fx %6v\n",
			r.Query, r.Dataset, r.Engine, r.LexShuffleBytes, r.DictShuffleBytes,
			r.ShuffleReductionPct, r.WallSpeedup, r.SimSpeedup, r.RowsIdentical)
	}
	fmt.Fprintf(&b, "total shuffle: %d -> %d bytes (%.1f%% reduction); geo-mean wall %.2fx, sim %.2fx; rows identical: %v\n",
		rep.TotalLexShuffleBytes, rep.TotalDictShuffleBytes, rep.ShuffleReductionPct,
		rep.MeanWallSpeedup, rep.MeanSimSpeedup, rep.AllRowsIdentical)
	return b.String()
}
