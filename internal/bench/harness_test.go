package bench

import (
	"reflect"
	"testing"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/sparql"
)

// TestCatalogParses ensures every catalog query parses and builds.
func TestCatalogParses(t *testing.T) {
	if len(Catalog) != 29 {
		t.Errorf("catalog has %d queries, want 29 (G1-G9, MG1-MG4, MG6-MG18, MGA, SK1-SK2)", len(Catalog))
	}
	for _, q := range Catalog {
		parsed, err := sparql.Parse(q.SPARQL)
		if err != nil {
			t.Errorf("%s: parse: %v", q.ID, err)
			continue
		}
		if _, err := algebra.Build(parsed); err != nil {
			t.Errorf("%s: build: %v", q.ID, err)
		}
	}
}

// TestCatalogFormatRoundTrip: every catalog query survives
// parse → format → reparse with an identical AST.
func TestCatalogFormatRoundTrip(t *testing.T) {
	for _, q := range Catalog {
		q1, err := sparql.Parse(q.SPARQL)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		text := sparql.Format(q1)
		q2, err := sparql.Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", q.ID, err, text)
		}
		if !reflect.DeepEqual(q1, q2) {
			t.Errorf("%s: formatting changed the AST:\n%s", q.ID, text)
		}
	}
}

// TestMultiGroupingQueriesOverlap: every MG query except the explicitly
// non-overlapping ones must admit a composite pattern (the rewriting the
// paper applies to all of MG1-MG18).
func TestMultiGroupingQueriesOverlap(t *testing.T) {
	for _, q := range Catalog {
		if q.ID[0] != 'M' {
			continue
		}
		parsed, err := sparql.Parse(q.SPARQL)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		aq, err := algebra.Build(parsed)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if _, err := algebra.BuildComposite(aq.Subqueries); err != nil {
			t.Errorf("%s: composite rewriting failed: %v", q.ID, err)
		}
	}
}

// TestFullCatalogAllEnginesVerified is the repository's heaviest
// correctness gate: every catalog query runs on its dataset(s) through all
// four engines, and every result is compared against the in-memory oracle.
func TestFullCatalogAllEnginesVerified(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog run skipped in -short mode")
	}
	h := NewHarness(true)
	for _, q := range Catalog {
		for _, dsID := range DatasetsFor(q) {
			if q.Dataset == "bsbm" && dsID == "bsbm-2m" && testing.Short() {
				continue
			}
			rs, err := h.Run(q.ID, dsID, Engines())
			if err != nil {
				t.Fatalf("%s on %s: %v", q.ID, dsID, err)
			}
			for _, r := range rs {
				if !r.Verified {
					t.Errorf("%s on %s via %s: not verified", q.ID, dsID, r.Engine)
				}
				if r.Rows == 0 && q.ID != "G2" && q.ID != "G4" && q.ID != "MG2" && q.ID != "MG4" {
					// hi-selectivity queries may legitimately match little,
					// everything else must produce rows.
					t.Errorf("%s on %s via %s: empty result", q.ID, dsID, r.Engine)
				}
			}
		}
	}
}

// TestMG13MaterializationBlowup asserts the paper's MG13 story in bytes:
// naive Hive materialises the multi-valued MeSH join twice, RAPIDAnalytics
// materialises the least of all four engines.
func TestMG13MaterializationBlowup(t *testing.T) {
	if testing.Short() {
		t.Skip("pubmed run skipped in -short mode")
	}
	h := NewHarness(false)
	rs, err := h.Run("MG13", "pubmed", Engines())
	if err != nil {
		t.Fatal(err)
	}
	mat := map[string]int64{}
	for _, r := range rs {
		mat[r.Engine] = r.MaterializedBytes
	}
	if !(mat["RAPIDAnalytics"] < mat["RAPID+ (Naive)"]) {
		t.Errorf("RAPIDAnalytics materialised %d >= RAPID+ %d", mat["RAPIDAnalytics"], mat["RAPID+ (Naive)"])
	}
	if !(mat["RAPIDAnalytics"]*2 < mat["Hive (Naive)"]) {
		t.Errorf("naive Hive should materialise >2x RAPIDAnalytics: %d vs %d", mat["Hive (Naive)"], mat["RAPIDAnalytics"])
	}
}

// TestRAPIDAnalyticsWinsOnMultiGrouping asserts the paper's headline
// ordering on the simulated cost: for multi-grouping queries,
// RAPIDAnalytics ≤ RAPID+ ≤ Hive (Naive).
func TestRAPIDAnalyticsWinsOnMultiGrouping(t *testing.T) {
	if testing.Short() {
		t.Skip("bench ordering skipped in -short mode")
	}
	h := NewHarness(false)
	for _, q := range []string{"MG1", "MG3"} {
		rs, err := h.Run(q, "bsbm-500k", Engines())
		if err != nil {
			t.Fatal(err)
		}
		sim := map[string]float64{}
		for _, r := range rs {
			sim[r.Engine] = r.SimSeconds
		}
		if !(sim["RAPIDAnalytics"] < sim["RAPID+ (Naive)"]) {
			t.Errorf("%s: RAPIDAnalytics (%.0fs) not faster than RAPID+ (%.0fs)", q, sim["RAPIDAnalytics"], sim["RAPID+ (Naive)"])
		}
		if !(sim["RAPID+ (Naive)"] < sim["Hive (Naive)"]) {
			t.Errorf("%s: RAPID+ (%.0fs) not faster than Hive (%.0fs)", q, sim["RAPID+ (Naive)"], sim["Hive (Naive)"])
		}
	}
}
