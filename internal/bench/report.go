package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Paper-reported execution times in seconds, used to print "paper vs
// measured" comparisons. Values come from Table 3 and Table 4 of the
// paper; the figures (8a–8c) are bar charts, so only the relative gains
// quoted in §5.2 are recorded for them.

// paperTable3BSBM maps query -> [Hive, RAPIDAnalytics] for the two BSBM
// scales.
var paperTable3BSBM = map[string]map[string][2]float64{
	"bsbm-500k": {
		"G1": {1023, 209}, "G2": {974, 182}, "G3": {1632, 287}, "G4": {1112, 183},
	},
	"bsbm-2m": {
		"G1": {3261, 215}, "G2": {3002, 158}, "G3": {6088, 302}, "G4": {5419, 170},
	},
}

// paperTable3Chem maps query -> [Hive, RAPIDAnalytics].
var paperTable3Chem = map[string][2]float64{
	"G5": {144, 124}, "G6": {99, 102}, "G7": {105, 118}, "G8": {142, 104}, "G9": {535, 91},
}

// paperTable4 maps query -> [Hive Naive, Hive MQO, RAPID+, RAPIDAnalytics].
// Hive (Naive) on MG13 eventually failed on HDFS space; the paper reports
// ">120min".
var paperTable4 = map[string][4]float64{
	"MG11": {2111, 1753, 229, 124},
	"MG12": {2771, 2898, 229, 126},
	"MG13": {7200, 15060, 1102, 651},
	"MG14": {18713, 9124, 756, 462},
	"MG15": {13746, 7320, 619, 338},
	"MG16": {10777, 5795, 464, 237},
	"MG17": {2210, 1851, 226, 118},
	"MG18": {5654, 4817, 306, 202},
}

// row formats one line of an aligned table.
func formatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for k := len(c); k < widths[i]; k++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func secs(v float64) string { return fmt.Sprintf("%.0f", v) }

// indexResults keys results by query+engine.
func indexResults(rs []RunResult) map[string]RunResult {
	m := map[string]RunResult{}
	for _, r := range rs {
		m[r.Query+"|"+r.Engine] = r
	}
	return m
}

// RenderTable3BSBM renders the left half of Table 3: G1–G4 on both BSBM
// scales, Hive vs RAPIDAnalytics, paper seconds alongside simulated
// seconds.
func RenderTable3BSBM(res500k, res2m []RunResult) string {
	i5, i2 := indexResults(res500k), indexResults(res2m)
	var rows [][]string
	for _, q := range []string{"G1", "G2", "G3", "G4"} {
		h5 := i5[q+"|Hive (Naive)"]
		r5 := i5[q+"|RAPIDAnalytics"]
		h2 := i2[q+"|Hive (Naive)"]
		r2 := i2[q+"|RAPIDAnalytics"]
		p5 := paperTable3BSBM["bsbm-500k"][q]
		p2 := paperTable3BSBM["bsbm-2m"][q]
		rows = append(rows, []string{
			q,
			secs(p5[0]), secs(h5.SimSeconds),
			secs(p5[1]), secs(r5.SimSeconds),
			secs(p2[0]), secs(h2.SimSeconds),
			secs(p2[1]), secs(r2.SimSeconds),
		})
	}
	return "Table 3 (BSBM): Hive vs RAPIDAnalytics, seconds (paper | simulated)\n" +
		formatTable([]string{
			"Query",
			"500K Hive(p)", "500K Hive(m)",
			"500K R.A.(p)", "500K R.A.(m)",
			"2M Hive(p)", "2M Hive(m)",
			"2M R.A.(p)", "2M R.A.(m)",
		}, rows)
}

// RenderTable3Chem renders the right half of Table 3: G5–G9 on
// Chem2Bio2RDF.
func RenderTable3Chem(res []RunResult) string {
	idx := indexResults(res)
	var rows [][]string
	for _, q := range []string{"G5", "G6", "G7", "G8", "G9"} {
		h := idx[q+"|Hive (Naive)"]
		r := idx[q+"|RAPIDAnalytics"]
		p := paperTable3Chem[q]
		rows = append(rows, []string{
			q, secs(p[0]), secs(h.SimSeconds), secs(p[1]), secs(r.SimSeconds),
		})
	}
	return "Table 3 (Chem2Bio2RDF): Hive vs RAPIDAnalytics, seconds (paper | simulated)\n" +
		formatTable([]string{"Query", "Hive(p)", "Hive(m)", "R.A.(p)", "R.A.(m)"}, rows)
}

// RenderFigure renders a Figure 8-style comparison: per query, all four
// engines' simulated seconds plus each engine's speedup over Hive (Naive).
func RenderFigure(title string, queryIDs []string, res []RunResult) string {
	idx := indexResults(res)
	headers := []string{"Query"}
	for _, n := range EngineNames() {
		headers = append(headers, n, "×")
	}
	var rows [][]string
	for _, q := range queryIDs {
		base := idx[q+"|Hive (Naive)"].SimSeconds
		row := []string{q}
		for _, n := range EngineNames() {
			r := idx[q+"|"+n]
			speedup := "-"
			if r.SimSeconds > 0 {
				speedup = fmt.Sprintf("%.1f", base/r.SimSeconds)
			}
			row = append(row, secs(r.SimSeconds), speedup)
		}
		rows = append(rows, row)
	}
	return title + " — simulated seconds and speedup over Hive (Naive)\n" +
		formatTable(headers, rows)
}

// RenderTable4 renders Table 4: MG11–MG18 on PubMed across all four
// engines, paper seconds alongside simulated seconds.
func RenderTable4(res []RunResult) string {
	idx := indexResults(res)
	var rows [][]string
	for _, q := range []string{"MG11", "MG12", "MG13", "MG14", "MG15", "MG16", "MG17", "MG18"} {
		p := paperTable4[q]
		row := []string{q}
		for i, n := range EngineNames() {
			r := idx[q+"|"+n]
			row = append(row, secs(p[i]), secs(r.SimSeconds))
		}
		rows = append(rows, row)
	}
	return "Table 4 (PubMed): execution seconds (paper | simulated)\n" +
		formatTable([]string{
			"Query",
			"Hive(p)", "Hive(m)",
			"MQO(p)", "MQO(m)",
			"RAPID+(p)", "RAPID+(m)",
			"R.A.(p)", "R.A.(m)",
		}, rows) +
		"* paper's Hive (Naive) MG13 failed after >120min (HDFS space); 7200 is a floor.\n"
}

// RenderCycles renders the MR-cycle counts per engine for a set of
// queries, the §5.2 plan-shape verification.
func RenderCycles(res []RunResult) string {
	idx := indexResults(res)
	queries := map[string]bool{}
	for _, r := range res {
		queries[r.Query] = true
	}
	var qs []string
	for q := range queries {
		qs = append(qs, q)
	}
	sortQueries(qs)
	headers := []string{"Query"}
	for _, n := range EngineNames() {
		headers = append(headers, n)
	}
	var rows [][]string
	for _, q := range qs {
		row := []string{q}
		for _, n := range EngineNames() {
			r := idx[q+"|"+n]
			row = append(row, fmt.Sprintf("%d (%d map-only)", r.Cycles, r.MapOnlyCycles))
		}
		rows = append(rows, row)
	}
	return "MR cycles per engine (map-only cycles in parentheses)\n" + formatTable(headers, rows)
}

// RenderAblation renders the RAPIDAnalytics option ablation.
func RenderAblation(res []RunResult) string {
	headers := []string{"Query", "Variant", "Cycles", "SimSecs", "Shuffle B", "Materialized B"}
	var rows [][]string
	for _, r := range res {
		rows = append(rows, []string{
			r.Query, r.Engine,
			fmt.Sprintf("%d", r.Cycles),
			secs(r.SimSeconds),
			fmt.Sprintf("%d", r.ShuffleBytes),
			fmt.Sprintf("%d", r.MaterializedBytes),
		})
	}
	return "RAPIDAnalytics ablations (Fig 6a vs 6b, α filter, hash pre-aggregation)\n" +
		formatTable(headers, rows)
}

// sortQueries orders query ids naturally: G1..G9 before MG1..MG18.
func sortQueries(qs []string) {
	rank := func(q string) (int, int) {
		kind := 0
		rest := strings.TrimPrefix(q, "G")
		if strings.HasPrefix(q, "MG") {
			kind = 1
			rest = strings.TrimPrefix(q, "MG")
		}
		n := 0
		fmt.Sscanf(rest, "%d", &n)
		return kind, n
	}
	sort.Slice(qs, func(i, j int) bool {
		ki, ni := rank(qs[i])
		kj, nj := rank(qs[j])
		if ki != kj {
			return ki < kj
		}
		return ni < nj
	})
}
