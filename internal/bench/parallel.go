package bench

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/sparql"
)

// ReduceModeRun compares one (query, engine) pair between the sequential
// and the parallel reduce path.
type ReduceModeRun struct {
	Query  string `json:"query"`
	Engine string `json:"engine"`
	// SeqWallMillis and ParWallMillis are best-of-iters in-process times.
	SeqWallMillis float64 `json:"seqWallMillis"`
	ParWallMillis float64 `json:"parWallMillis"`
	// Speedup is SeqWall / ParWall.
	Speedup float64 `json:"speedup"`
	// RowsIdentical reports that both modes returned the same result rows in
	// the same order; VolumesIdentical that every cycle's volume metrics
	// (records, bytes, groups, simulated seconds) matched cycle for cycle.
	RowsIdentical    bool `json:"rowsIdentical"`
	VolumesIdentical bool `json:"volumesIdentical"`
}

// ParallelReport is the result of CompareReduceModes, serialised to
// BENCH_parallel.json by benchrunner -exp parallel.
type ParallelReport struct {
	Dataset string `json:"dataset"`
	// Cores is runtime.NumCPU on the measuring machine; the parallel mode
	// cannot beat sequential without several of them.
	Cores int `json:"cores"`
	// ReduceWorkers is the parallel mode's worker-pool size.
	ReduceWorkers int             `json:"reduceWorkers"`
	Iters         int             `json:"iters"`
	Runs          []ReduceModeRun `json:"runs"`
	// MeanSpeedup is the geometric mean of the per-run speedups.
	MeanSpeedup float64 `json:"meanSpeedup"`
}

// CompareReduceModes runs each query on each engine twice per iteration —
// once with the reduce phase forced sequential (one worker) and once with
// the parallel worker pool — and reports best-of-iters wall times plus
// row- and metric-identity checks. Both modes load independent copies of
// the same deterministic dataset (scaled by sizeMult, 1 = default), so any
// divergence is an engine bug.
func CompareReduceModes(datasetID string, queryIDs []string, engines []engine.Engine, iters int, sizeMult float64) (*ParallelReport, error) {
	if iters < 1 {
		iters = 1
	}
	seqLoader := NewLoader()
	seqLoader.ReduceWorkers = 1
	parLoader := NewLoader()
	if sizeMult > 0 {
		seqLoader.SizeMult = sizeMult
		parLoader.SizeMult = sizeMult
	}

	report := &ParallelReport{
		Dataset:       datasetID,
		Cores:         runtime.NumCPU(),
		ReduceWorkers: mapred.DefaultParallelism(),
		Iters:         iters,
	}
	for _, id := range queryIDs {
		q, ok := Get(id)
		if !ok {
			return nil, fmt.Errorf("bench: unknown query %q", id)
		}
		parsed, err := sparql.Parse(q.SPARQL)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", id, err)
		}
		aq, err := algebra.Build(parsed)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", id, err)
		}
		for _, e := range engines {
			run := ReduceModeRun{Query: id, Engine: e.Name()}
			for it := 0; it < iters; it++ {
				seqRes, seqWM, seqWall, err := executeOn(seqLoader, datasetID, e, aq)
				if err != nil {
					return nil, fmt.Errorf("bench: %s via %s (sequential): %w", id, e.Name(), err)
				}
				parRes, parWM, parWall, err := executeOn(parLoader, datasetID, e, aq)
				if err != nil {
					return nil, fmt.Errorf("bench: %s via %s (parallel): %w", id, e.Name(), err)
				}
				if it == 0 {
					run.RowsIdentical = seqRes.Pretty() == parRes.Pretty()
					run.VolumesIdentical = volumesIdentical(seqWM, parWM)
					run.SeqWallMillis = seqWall
					run.ParWallMillis = parWall
				} else {
					run.SeqWallMillis = min(run.SeqWallMillis, seqWall)
					run.ParWallMillis = min(run.ParWallMillis, parWall)
				}
			}
			if run.ParWallMillis > 0 {
				run.Speedup = run.SeqWallMillis / run.ParWallMillis
			}
			report.Runs = append(report.Runs, run)
		}
	}
	report.MeanSpeedup = geoMean(report.Runs)
	return report, nil
}

func executeOn(l *Loader, datasetID string, e engine.Engine, aq *algebra.AnalyticalQuery) (*engine.Result, *mapred.WorkflowMetrics, float64, error) {
	c, ds, err := l.Load(datasetID)
	if err != nil {
		return nil, nil, 0, err
	}
	start := time.Now()
	res, wm, err := e.Execute(c, ds, aq)
	if err != nil {
		return nil, nil, 0, err
	}
	return res, wm, float64(time.Since(start).Microseconds()) / 1000, nil
}

func volumesIdentical(a, b *mapred.WorkflowMetrics) bool {
	if len(a.Jobs) != len(b.Jobs) {
		return false
	}
	for i := range a.Jobs {
		if a.Jobs[i].Job != b.Jobs[i].Job || a.Jobs[i].Volumes() != b.Jobs[i].Volumes() {
			return false
		}
	}
	return true
}

func geoMean(runs []ReduceModeRun) float64 {
	if len(runs) == 0 {
		return 0
	}
	prod := 1.0
	for _, r := range runs {
		if r.Speedup <= 0 {
			return 0
		}
		prod *= r.Speedup
	}
	return math.Pow(prod, 1/float64(len(runs)))
}

// RenderParallel renders a ParallelReport as an aligned table.
func RenderParallel(rep *ParallelReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sequential vs parallel reduce on %s (%d cores, %d reduce workers, best of %d)\n",
		rep.Dataset, rep.Cores, rep.ReduceWorkers, rep.Iters)
	fmt.Fprintf(&b, "%-6s %-22s %10s %10s %8s %6s %8s\n",
		"query", "engine", "seq ms", "par ms", "speedup", "rows=", "volumes=")
	for _, r := range rep.Runs {
		fmt.Fprintf(&b, "%-6s %-22s %10.2f %10.2f %7.2fx %6v %8v\n",
			r.Query, r.Engine, r.SeqWallMillis, r.ParWallMillis, r.Speedup,
			r.RowsIdentical, r.VolumesIdentical)
	}
	fmt.Fprintf(&b, "geometric-mean speedup: %.2fx\n", rep.MeanSpeedup)
	return b.String()
}
