package bench

import (
	"fmt"
	"strings"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/core"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/hive"
	"rapidanalytics/internal/obs"
	"rapidanalytics/internal/rapid"
	"rapidanalytics/internal/sparql"
	"rapidanalytics/internal/stats"
)

// PlannerCatalog returns the planner experiment's workload: the BSBM
// multi-grouping queries on the uniform BSBM-500K graph (the regression
// half — cost-based ordering must not lose ground where the heuristic's
// uniformity assumption holds) and the SK stressors on both adversarially
// skewed graphs (the half the statistics exist for).
func PlannerCatalog() []DictCatalogEntry {
	return []DictCatalogEntry{
		{Dataset: "bsbm-500k", Queries: []string{"MG1", "MG2", "MG3", "MG4"}},
		{Dataset: "bsbm-zipf", Queries: []string{"SK1", "SK2"}},
		{Dataset: "bsbm-supernode", Queries: []string{"SK1", "SK2"}},
	}
}

// HeuristicEngines returns the four engines with the cost-based planner
// switched off: fixed star-0-first join orders, measured map-join sizing,
// default reduce parallelism, no mid-query re-planning.
func HeuristicEngines() []engine.Engine {
	hc := hive.DefaultConfig()
	hc.CostPlanner = false
	r := rapid.New()
	r.CostPlanner = false
	c := core.New()
	c.Opts.CostPlanner = false
	return []engine.Engine{&hive.Naive{Conf: hc}, &hive.MQO{Conf: hc}, r, c}
}

// PlannerRun compares one (query, dataset, engine) triple between the
// heuristic and the cost-based planner.
type PlannerRun struct {
	Query   string `json:"query"`
	Dataset string `json:"dataset"`
	Engine  string `json:"engine"`
	// RowsIdentical reports that both planner modes returned result rows
	// matching the in-memory oracle (and hence each other) — join order
	// must be invisible in results.
	RowsIdentical bool `json:"rowsIdentical"`
	// Skewed marks runs on the adversarial datasets; the plan-quality gate
	// sums simulated seconds over these runs only.
	Skewed bool `json:"skewed"`
	// Simulated seconds are the deterministic cost-model estimates at paper
	// scale under each planner mode.
	HeurSimSeconds float64 `json:"heurSimSeconds"`
	CostSimSeconds float64 `json:"costSimSeconds"`
	SimSpeedup     float64 `json:"simSpeedup"`
	// Cycle counts under each mode (map-join promotion from estimated sizes
	// can change them).
	HeurCycles int `json:"heurCycles"`
	CostCycles int `json:"costCycles"`
	// Replans counts the mid-query "re-plan" planner spans the cost-based
	// run emitted.
	Replans int `json:"replans"`
}

// PlanCapture records the two join orders for one skewed (query, dataset)
// pair, with the estimator's predicted intermediate cardinalities inline —
// the before/after evidence PLANNER.md quotes.
type PlanCapture struct {
	Query   string `json:"query"`
	Dataset string `json:"dataset"`
	// HeuristicOrder and CostOrder render each join chain as
	// "?acc ⋈ ?star on ?var (est N)" steps.
	HeuristicOrder string `json:"heuristicOrder"`
	CostOrder      string `json:"costOrder"`
}

// PlannerReport is the result of ComparePlannerModes, serialised to
// BENCH_planner.json by benchrunner -exp planner.
type PlannerReport struct {
	Runs  []PlannerRun  `json:"runs"`
	Plans []PlanCapture `json:"plans"`
	// AllRowsIdentical is the conjunction of every run's RowsIdentical —
	// the experiment's correctness gate.
	AllRowsIdentical bool `json:"allRowsIdentical"`
	// Skew totals sum simulated seconds over the skewed runs; the
	// plan-quality gate requires the cost-based total to be strictly lower.
	SkewHeurSimSeconds float64 `json:"skewHeurSimSeconds"`
	SkewCostSimSeconds float64 `json:"skewCostSimSeconds"`
	SkewImprovementPct float64 `json:"skewImprovementPct"`
	SkewFaster         bool    `json:"skewFaster"`
	// TotalReplans counts mid-query re-plans across all cost-based runs;
	// ReplanObserved is the adaptivity gate (at least one fired).
	TotalReplans   int  `json:"totalReplans"`
	ReplanObserved bool `json:"replanObserved"`
}

// ComparePlannerModes runs the planner catalog through all four engines
// twice — once with the fixed heuristic planner and once with the
// statistics-driven cost-based planner — over the same loaded datasets.
// Every run is verified against the in-memory oracle (divergence is an
// error, so RowsIdentical doubles as an oracle gate), simulated seconds are
// compared per mode, and the cost-based runs' span trees are scanned for
// mid-query "re-plan" planner spans.
func ComparePlannerModes(catalog []DictCatalogEntry, sizeMult float64) (*PlannerReport, error) {
	h := NewHarness(true)
	if sizeMult > 0 {
		h.Loader.SizeMult = sizeMult
	}

	report := &PlannerReport{AllRowsIdentical: true}
	for _, entry := range catalog {
		skewed := entry.Dataset != "bsbm-500k" && entry.Dataset != "bsbm-2m"
		for _, id := range entry.Queries {
			heurRS, err := h.RunTraced(id, entry.Dataset, HeuristicEngines())
			if err != nil {
				return nil, fmt.Errorf("bench: %s on %s (heuristic): %w", id, entry.Dataset, err)
			}
			costRS, err := h.RunTraced(id, entry.Dataset, Engines())
			if err != nil {
				return nil, fmt.Errorf("bench: %s on %s (cost): %w", id, entry.Dataset, err)
			}
			if len(heurRS) != len(costRS) {
				return nil, fmt.Errorf("bench: %s on %s: engine set mismatch", id, entry.Dataset)
			}
			for i := range heurRS {
				hr, cr := heurRS[i], costRS[i]
				run := PlannerRun{
					Query:          id,
					Dataset:        entry.Dataset,
					Engine:         cr.Engine,
					RowsIdentical:  hr.Verified && cr.Verified && hr.Rows == cr.Rows,
					Skewed:         skewed,
					HeurSimSeconds: hr.SimSeconds,
					CostSimSeconds: cr.SimSeconds,
					HeurCycles:     hr.Cycles,
					CostCycles:     cr.Cycles,
					Replans:        countReplans(cr.Span),
				}
				if run.CostSimSeconds > 0 {
					run.SimSpeedup = run.HeurSimSeconds / run.CostSimSeconds
				}
				report.AllRowsIdentical = report.AllRowsIdentical && run.RowsIdentical
				if skewed {
					report.SkewHeurSimSeconds += run.HeurSimSeconds
					report.SkewCostSimSeconds += run.CostSimSeconds
				}
				report.TotalReplans += run.Replans
				report.Runs = append(report.Runs, run)
			}
			if skewed {
				cap, err := capturePlan(h, id, entry.Dataset)
				if err != nil {
					return nil, err
				}
				report.Plans = append(report.Plans, cap)
			}
		}
	}
	report.SkewFaster = report.SkewCostSimSeconds < report.SkewHeurSimSeconds
	if report.SkewHeurSimSeconds > 0 {
		report.SkewImprovementPct = 100 * (1 - report.SkewCostSimSeconds/report.SkewHeurSimSeconds)
	}
	report.ReplanObserved = report.TotalReplans > 0
	return report, nil
}

// countReplans counts the mid-query "re-plan" planner spans in a traced
// run's span tree.
func countReplans(sn *obs.Snapshot) int {
	if sn == nil {
		return 0
	}
	n := 0
	sn.Walk(func(s *obs.Snapshot) {
		if s.Kind == obs.KindPlanner && s.Name == "re-plan" {
			n++
		}
	})
	return n
}

// capturePlan renders the heuristic and cost-based join orders for one
// query on one loaded dataset, annotated with the estimator's predicted
// intermediate cardinalities.
func capturePlan(h *Harness, queryID, dsID string) (PlanCapture, error) {
	q, ok := Get(queryID)
	if !ok {
		return PlanCapture{}, fmt.Errorf("bench: unknown query %q", queryID)
	}
	parsed, err := sparql.Parse(q.SPARQL)
	if err != nil {
		return PlanCapture{}, fmt.Errorf("bench: %s: %w", queryID, err)
	}
	aq, err := algebra.Build(parsed)
	if err != nil {
		return PlanCapture{}, fmt.Errorf("bench: %s: %w", queryID, err)
	}
	_, ds, err := h.Loader.Load(dsID)
	if err != nil {
		return PlanCapture{}, err
	}
	gp := aq.Subqueries[0].Pattern
	refs := make([][]algebra.PropRef, len(gp.Stars))
	for i, st := range gp.Stars {
		refs[i] = st.Props()
	}
	est := stats.NewEstimator(ds.Stats, refs, false)
	heur, err := algebra.JoinOrder(len(gp.Stars), gp.Joins)
	if err != nil {
		return PlanCapture{}, fmt.Errorf("bench: %s: %w", queryID, err)
	}
	cost, err := algebra.JoinOrderCost(len(gp.Stars), gp.Joins, est)
	if err != nil {
		return PlanCapture{}, fmt.Errorf("bench: %s: %w", queryID, err)
	}
	return PlanCapture{
		Query:          queryID,
		Dataset:        dsID,
		HeuristicOrder: formatOrder(gp, heur, est),
		CostOrder:      formatOrder(gp, cost, est),
	}, nil
}

// formatOrder renders a join chain as "?acc ⋈ ?star on ?v (est N)" steps,
// threading the estimator's predicted cardinality through the chain.
func formatOrder(gp *algebra.GraphPattern, order []algebra.Join, est *stats.Estimator) string {
	if len(order) == 0 {
		return "(single star)"
	}
	var b strings.Builder
	acc := est.StarCard(order[0].Left)
	fmt.Fprintf(&b, "?%s (est %.0f)", gp.Stars[order[0].Left].SubjectVar, acc)
	for _, e := range order {
		acc = est.JoinCard(acc, est.StarCard(e.Right), e)
		fmt.Fprintf(&b, " ⋈ ?%s on ?%s (est %.0f)", gp.Stars[e.Right].SubjectVar, e.Var, acc)
	}
	return b.String()
}

// RenderPlanner renders a PlannerReport as an aligned table.
func RenderPlanner(rep *PlannerReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Heuristic vs cost-based planner\n")
	fmt.Fprintf(&b, "%-6s %-14s %-22s %12s %12s %8s %7s %7s %8s %6s\n",
		"query", "dataset", "engine", "heur sim s", "cost sim s", "sim x", "cyc(h)", "cyc(c)", "replans", "rows=")
	for _, r := range rep.Runs {
		fmt.Fprintf(&b, "%-6s %-14s %-22s %12.1f %12.1f %7.2fx %7d %7d %8d %6v\n",
			r.Query, r.Dataset, r.Engine, r.HeurSimSeconds, r.CostSimSeconds,
			r.SimSpeedup, r.HeurCycles, r.CostCycles, r.Replans, r.RowsIdentical)
	}
	for _, p := range rep.Plans {
		fmt.Fprintf(&b, "%s on %s:\n  heuristic: %s\n  cost:      %s\n",
			p.Query, p.Dataset, p.HeuristicOrder, p.CostOrder)
	}
	fmt.Fprintf(&b, "skew sim seconds: %.1f heuristic vs %.1f cost (%.1f%% better, faster: %v); re-plans: %d; rows identical: %v\n",
		rep.SkewHeurSimSeconds, rep.SkewCostSimSeconds, rep.SkewImprovementPct,
		rep.SkewFaster, rep.TotalReplans, rep.AllRowsIdentical)
	return b.String()
}
