package bench

import (
	"testing"
)

// The tentpole guarantee at the query level: every multi-grouping catalog
// query returns the same result rows on every engine whether the dataset is
// loaded lexically or dictionary-encoded, and the dictionary plane shuffles
// strictly fewer bytes on every run.
func TestDictPlaneMatchesLexical(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog comparison in -short mode")
	}
	rep, err := CompareDictModes(MGCatalog(), Engines(), 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	queries := 0
	for _, e := range MGCatalog() {
		queries += len(e.Queries)
	}
	if want := queries * len(Engines()); len(rep.Runs) != want {
		t.Fatalf("got %d runs, want %d", len(rep.Runs), want)
	}
	for _, r := range rep.Runs {
		if !r.RowsIdentical {
			t.Errorf("%s on %s via %s: dictionary plane changed the result rows", r.Query, r.Dataset, r.Engine)
		}
		if r.DictShuffleBytes >= r.LexShuffleBytes {
			t.Errorf("%s on %s via %s: dict shuffled %d bytes, lexical %d — no reduction",
				r.Query, r.Dataset, r.Engine, r.DictShuffleBytes, r.LexShuffleBytes)
		}
	}
	if !rep.AllRowsIdentical {
		t.Error("AllRowsIdentical is false")
	}
	if rep.ShuffleReductionPct < 25 {
		t.Errorf("total shuffle reduction %.1f%%, want >= 25%%", rep.ShuffleReductionPct)
	}
}
