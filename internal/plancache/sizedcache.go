package plancache

import (
	"container/list"
	"sync"
)

// SizedCache is a byte-budget LRU map: every entry carries a caller-provided
// size, and inserting past the budget evicts least-recently-used entries
// until the new entry fits. It backs the serving layer's result and
// sub-relation caches, whose entries vary from a few bytes to megabytes —
// a count bound would let a handful of huge results blow the heap.
//
// All methods are safe for concurrent use.
type SizedCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element

	hits, misses, evictions int64
}

type sizedEntry struct {
	key   string
	value any
	size  int64
}

// NewSized returns a cache holding at most budget accounted bytes.
// Budgets below 1 are clamped to 1 (a cache that can hold nothing but
// still counts misses).
func NewSized(budget int64) *SizedCache {
	if budget < 1 {
		budget = 1
	}
	return &SizedCache{
		budget: budget,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *SizedCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*sizedEntry).value, true
}

// Put inserts or overwrites a value accounted at size bytes, evicting
// least-recently-used entries until the budget holds. A value larger than
// the whole budget is not cached at all (inserting it would empty the
// cache for a value that can never be retained).
func (c *SizedCache) Put(key string, value any, size int64) {
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		if el, ok := c.items[key]; ok {
			c.removeLocked(el)
		}
		return
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*sizedEntry)
		c.bytes += size - ent.size
		ent.value, ent.size = value, size
		c.ll.MoveToFront(el)
	} else {
		c.bytes += size
		c.items[key] = c.ll.PushFront(&sizedEntry{key: key, value: value, size: size})
	}
	for c.bytes > c.budget {
		oldest := c.ll.Back()
		if oldest == nil || oldest == c.ll.Front() {
			break
		}
		c.removeLocked(oldest)
		c.evictions++
	}
}

// removeLocked unlinks one element and returns its bytes to the budget.
func (c *SizedCache) removeLocked(el *list.Element) {
	ent := el.Value.(*sizedEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.bytes -= ent.size
}

// Remove drops a key if present.
func (c *SizedCache) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
	}
}

// Clear drops every entry (counters are preserved).
func (c *SizedCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.bytes = 0
}

// Len returns the current entry count.
func (c *SizedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the accounted bytes currently held.
func (c *SizedCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a snapshot of the counters.
func (c *SizedCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Entries:     c.ll.Len(),
		Bytes:       c.bytes,
		BudgetBytes: c.budget,
	}
}
