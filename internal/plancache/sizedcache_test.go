package plancache

import (
	"fmt"
	"sync"
	"testing"
)

func TestSizedCacheEvictsByBytes(t *testing.T) {
	c := NewSized(100)
	c.Put("a", 1, 40)
	c.Put("b", 2, 40)
	c.Put("c", 3, 40) // evicts a (LRU)
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived past the byte budget")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("b = %v, %v; want 2, true", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %v, %v; want 3, true", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 80 || st.BudgetBytes != 100 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries, 80/100 bytes", st)
	}
}

func TestSizedCacheLRUOrderFollowsGets(t *testing.T) {
	c := NewSized(100)
	c.Put("a", 1, 40)
	c.Put("b", 2, 40)
	c.Get("a")        // a becomes MRU
	c.Put("c", 3, 40) // evicts b, not a
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently-used a was evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU b survived")
	}
}

func TestSizedCacheOverwriteAdjustsBytes(t *testing.T) {
	c := NewSized(100)
	c.Put("a", 1, 30)
	c.Put("a", 2, 70)
	if got := c.Bytes(); got != 70 {
		t.Fatalf("Bytes = %d, want 70 after overwrite", got)
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("a = %v, want overwritten value 2", v)
	}
}

func TestSizedCacheRejectsOverBudgetValues(t *testing.T) {
	c := NewSized(50)
	c.Put("small", 1, 10)
	c.Put("huge", 2, 200)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("over-budget value was cached")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("existing entry evicted for an uncacheable value")
	}
	// Overwriting an existing key with an over-budget value must not leave
	// the stale value addressable.
	c.Put("small", 3, 200)
	if _, ok := c.Get("small"); ok {
		t.Fatal("stale value survived an over-budget overwrite")
	}
}

func TestSizedCacheRemoveAndClear(t *testing.T) {
	c := NewSized(100)
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	c.Remove("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("removed key still present")
	}
	if got := c.Bytes(); got != 10 {
		t.Fatalf("Bytes = %d after Remove, want 10", got)
	}
	c.Clear()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("Len/Bytes = %d/%d after Clear, want 0/0", c.Len(), c.Bytes())
	}
}

func TestSizedCacheConcurrent(t *testing.T) {
	c := NewSized(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.Put(key, i, int64(i%512))
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() < 0 {
		t.Fatalf("Bytes went negative: %d", c.Bytes())
	}
}
