package plancache

import (
	"fmt"
	"sync"
	"testing"
)

func TestHitMiss(t *testing.T) {
	c := New(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v; want 1, true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 0 evictions, 1 entry", st)
	}
}

func TestOverwriteIsNotEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("a", 2)
	v, _ := c.Get("a")
	if v.(int) != 2 {
		t.Fatalf("overwrite kept old value %v", v)
	}
	if st := c.Stats(); st.Evictions != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 0 evictions, 1 entry", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // a is now most recent
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a (recently used) should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c (just inserted) should be present")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d; want 1", st.Evictions)
	}
}

func TestRemoveAndClear(t *testing.T) {
	c := New(4)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Remove("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should be gone after Remove")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d; want 0", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should be gone after Clear")
	}
}

func TestCapacityClamp(t *testing.T) {
	c := New(0)
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d; want 1 (capacity clamped to 1)", c.Len())
	}
}

func TestKeyCollisionFree(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal("keys for different (system, query) pairs collided")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%16)
				if v, ok := c.Get(k); ok {
					_ = v.(string)
				} else {
					c.Put(k, k)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
}
