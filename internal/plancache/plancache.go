// Package plancache is a concurrency-safe LRU cache for compiled query
// plans. Real SPARQL workloads are dominated by repeated query templates
// (Bonifati et al.'s analysis of large public query logs), so amortising the
// parse → overlap-detection → composite-rewrite pipeline across repetitions
// of the same query text is the cheapest large win the serving layer gets.
//
// The cache is value-agnostic: it maps string keys to opaque entries and
// keeps exact hit/miss/eviction counters so the serving layer can export
// them. Callers build keys with Key, which scopes the query text by the
// executing system.
package plancache

import (
	"container/list"
	"strconv"
	"sync"
)

// Key builds a cache key scoping a (canonicalized) query text by system.
// The NUL separator cannot occur in either component, so keys are
// collision-free.
func Key(system, query string) string { return system + "\x00" + query }

// VersionedKey builds a cache key additionally scoped by a store data
// version (the counter a store bumps on every mutation-triggered layout
// invalidation, which also rebuilds the statistics catalog). Including the
// version in the key means a plan cached before a reload can never be
// served against drifted statistics: the old entries simply stop being
// addressable and age out of the LRU.
func VersionedKey(system string, version uint64, query string) string {
	return system + "\x00" + strconv.FormatUint(version, 10) + "\x00" + query
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped by the LRU policy (Remove and
	// overwrites are not evictions).
	Evictions int64 `json:"evictions"`
	// Entries is the current number of cached plans.
	Entries int `json:"entries"`
	// Capacity is the configured maximum number of entries (count-bounded
	// caches only; zero for a SizedCache).
	Capacity int `json:"capacity,omitempty"`
	// Bytes and BudgetBytes describe a SizedCache: accounted bytes held
	// and the configured byte budget. Zero for a count-bounded Cache.
	Bytes       int64 `json:"bytes,omitempty"`
	BudgetBytes int64 `json:"budgetBytes,omitempty"`
}

type entry struct {
	key   string
	value any
}

// Cache is a fixed-capacity LRU map. All methods are safe for concurrent
// use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits, misses, evictions int64
}

// New returns a cache holding at most capacity entries. Capacities below 1
// are clamped to 1.
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Put inserts or overwrites a value, evicting the least recently used entry
// when the cache is full.
func (c *Cache) Put(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).value = value
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*entry).key)
			c.evictions++
		}
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, value: value})
}

// Remove drops a key if present.
func (c *Cache) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// Clear drops every entry (counters are preserved).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.capacity)
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
	}
}
