package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteNTriples serialises the graph in N-Triples format, one statement per
// line.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if _, err := bw.WriteString(" .\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNTriples parses an N-Triples document. It accepts the subset of the
// grammar produced by WriteNTriples and by common exporters: IRIs in angle
// brackets, plain and language-tagged/typed literals (tags and datatypes are
// dropped), blank nodes, comments and blank lines.
func ReadNTriples(r io.Reader) (*Graph, error) {
	g := &Graph{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTLine(line)
		if err != nil {
			return nil, fmt.Errorf("ntriples: line %d: %w", lineNo, err)
		}
		g.Add(t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

func parseNTLine(line string) (Triple, error) {
	p := &ntParser{in: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("property: %w", err)
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	p.skipSpace()
	if !strings.HasPrefix(p.rest(), ".") {
		return Triple{}, fmt.Errorf("missing terminating dot")
	}
	return Triple{Subject: s, Property: pr, Object: o}, nil
}

type ntParser struct {
	in  string
	pos int
}

func (p *ntParser) rest() string { return p.in[p.pos:] }

func (p *ntParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *ntParser) term() (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return Term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.in[p.pos] {
	case '<':
		end := strings.IndexByte(p.in[p.pos:], '>')
		if end < 0 {
			return Term{}, fmt.Errorf("unterminated IRI")
		}
		v := p.in[p.pos+1 : p.pos+end]
		p.pos += end + 1
		return NewIRI(v), nil
	case '_':
		if p.pos+1 >= len(p.in) || p.in[p.pos+1] != ':' {
			return Term{}, fmt.Errorf("malformed blank node")
		}
		start := p.pos + 2
		end := start
		for end < len(p.in) && p.in[end] != ' ' && p.in[end] != '\t' {
			end++
		}
		v := p.in[start:end]
		p.pos = end
		if v == "" {
			return Term{}, fmt.Errorf("empty blank node label")
		}
		return NewBlank(v), nil
	case '"':
		v, n, err := unescapeQuoted(p.in[p.pos:])
		if err != nil {
			return Term{}, err
		}
		p.pos += n
		// Drop optional language tag or datatype.
		if strings.HasPrefix(p.rest(), "@") {
			for p.pos < len(p.in) && p.in[p.pos] != ' ' && p.in[p.pos] != '\t' {
				p.pos++
			}
		} else if strings.HasPrefix(p.rest(), "^^") {
			p.pos += 2
			if p.pos < len(p.in) && p.in[p.pos] == '<' {
				end := strings.IndexByte(p.in[p.pos:], '>')
				if end < 0 {
					return Term{}, fmt.Errorf("unterminated datatype IRI")
				}
				p.pos += end + 1
			}
		}
		return NewLiteral(v), nil
	default:
		return Term{}, fmt.Errorf("unexpected character %q", p.in[p.pos])
	}
}

// unescapeQuoted parses a double-quoted, backslash-escaped string starting at
// in[0] == '"'. It returns the unescaped value and the number of input bytes
// consumed (including both quotes).
func unescapeQuoted(in string) (string, int, error) {
	if len(in) == 0 || in[0] != '"' {
		return "", 0, fmt.Errorf("expected opening quote")
	}
	var b strings.Builder
	i := 1
	for i < len(in) {
		c := in[i]
		switch c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(in) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch in[i] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", in[i])
			}
			i++
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated literal")
}
