package rdf

import "testing"

func FuzzTermFromKey(f *testing.F) {
	f.Add("")
	f.Add("Ihttp://example.org/s")
	f.Add("L42.5")
	f.Add("Bnode1")
	f.Add("L")
	f.Add("\x00\x1f\x1e")
	f.Fuzz(func(t *testing.T, k string) {
		term := TermFromKey(k)
		if k == "" {
			if term != (Term{}) {
				t.Fatalf("TermFromKey(%q) = %+v, want zero term", k, term)
			}
			return
		}
		// Key() tags the value with the kind byte; for any tagged key the
		// round trip must be the identity (untagged keys normalise to 'I').
		got := term.Key()
		want := k
		switch k[0] {
		case 'L', 'B', 'I':
		default:
			want = "I" + k[1:]
		}
		if got != want {
			t.Fatalf("TermFromKey(%q).Key() = %q, want %q", k, got, want)
		}
	})
}

// FuzzDictRoundTrip checks the dictionary invariants for arbitrary term
// keys: AddString is idempotent, Lex inverts it, and the ID-string resolves
// back to the same ID.
func FuzzDictRoundTrip(f *testing.F) {
	f.Add("Ihttp://example.org/s")
	f.Add("L3.14")
	f.Add("Bb0")
	f.Add("")
	f.Add("L\x1fweird\x00bytes")
	f.Fuzz(func(t *testing.T, key string) {
		d := NewDict()
		idStr := d.AddString(key)
		if again := d.AddString(key); again != idStr {
			t.Fatalf("AddString(%q) not idempotent: %x vs %x", key, []byte(idStr), []byte(again))
		}
		if lex, ok := d.Lex(idStr); !ok || lex != key {
			t.Fatalf("Lex(AddString(%q)) = %q, %v", key, lex, ok)
		}
	})
}
