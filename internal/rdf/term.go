// Package rdf provides the core RDF data model used throughout the system:
// terms (IRIs, literals, blank nodes), triples, and an N-Triples
// reader/writer. The model is deliberately lexical — values are strings and
// numeric interpretation happens at filter/aggregation time — matching how
// the paper's systems (Hive over text/ORC tables, Pig triplegroups) treat
// RDF terms.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

const (
	// IRI is an internationalized resource identifier.
	IRI TermKind = iota
	// Literal is an RDF literal. Only plain (string) literals are needed by
	// the analytical workloads; numeric interpretation is lexical.
	Literal
	// Blank is a blank node with a local label.
	Blank
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Literal:
		return "literal"
	case Blank:
		return "blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a single RDF term. The zero Term is an empty IRI and is treated as
// invalid by Valid.
type Term struct {
	Kind  TermKind
	Value string
}

// NewIRI returns an IRI term.
func NewIRI(v string) Term { return Term{Kind: IRI, Value: v} }

// NewLiteral returns a plain literal term.
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }

// NewBlank returns a blank-node term with the given label (without the "_:"
// prefix).
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// Valid reports whether the term has a non-empty value.
func (t Term) Valid() bool { return t.Value != "" }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// String renders the term in N-Triples surface syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Literal:
		return `"` + escapeLiteral(t.Value) + `"`
	case Blank:
		return "_:" + t.Value
	default:
		return t.Value
	}
}

// Key returns a compact string that uniquely identifies the term across
// kinds. It is used as a join/grouping key; two terms are join-equal iff
// their keys are equal.
func (t Term) Key() string {
	switch t.Kind {
	case Literal:
		return "L" + t.Value
	case Blank:
		return "B" + t.Value
	default:
		return "I" + t.Value
	}
}

// TermFromKey reverses Term.Key.
func TermFromKey(k string) Term {
	if k == "" {
		return Term{}
	}
	switch k[0] {
	case 'L':
		return NewLiteral(k[1:])
	case 'B':
		return NewBlank(k[1:])
	default:
		return NewIRI(k[1:])
	}
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Triple is a single RDF statement.
type Triple struct {
	Subject  Term
	Property Term // called Predicate in RDF specs; the paper says Property
	Object   Term
}

// T is a convenience constructor for a triple of IRIs/literals.
func T(s, p Term, o Term) Triple { return Triple{Subject: s, Property: p, Object: o} }

// String renders the triple in N-Triples syntax (without the trailing dot).
func (t Triple) String() string {
	return t.Subject.String() + " " + t.Property.String() + " " + t.Object.String()
}

// RDFType is the rdf:type property IRI.
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// TypeTerm is the rdf:type property as a Term.
var TypeTerm = NewIRI(RDFType)

// Graph is an in-memory bag of triples. It is the substrate the reference
// implementation queries directly and the input to the store loaders.
type Graph struct {
	Triples []Triple
}

// Add appends triples to the graph.
func (g *Graph) Add(ts ...Triple) { g.Triples = append(g.Triples, ts...) }

// Len returns the number of triples.
func (g *Graph) Len() int { return len(g.Triples) }

// Properties returns the set of distinct property IRIs in the graph.
func (g *Graph) Properties() map[string]int {
	m := make(map[string]int)
	for _, t := range g.Triples {
		m[t.Property.Value]++
	}
	return m
}
