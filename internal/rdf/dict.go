package rdf

import (
	"encoding/binary"
	"strconv"
	"sync"
)

// NullID is the reserved term ID for the relational NULL. Its ID-string is
// uvarint(0) = "\x00", which is byte-identical to algebra.Null, so NULL
// detection and left-outer NULL-extension work unchanged in the ID plane.
const NullID uint64 = 0

// nullIDString is uvarint(NullID): the single zero byte, == algebra.Null.
const nullIDString = "\x00"

// MissingIDString is the ID-string returned for terms absent from the
// dictionary (query constants that never occur in the data). A lone uvarint
// continuation byte is never a valid encoding, so it can never equal any
// real term's ID-string — comparisons against it simply never match.
const MissingIDString = "\x80"

// dictEntry is one dictionary slot: the lexical key, its interned
// ID-string, and a lazily parsed numeric value for the aggregation fast
// path.
type dictEntry struct {
	key   string // rdf.Term.Key form
	idStr string // uvarint(id) bytes, interned once
	num   float64
	isNum bool
}

// Dict is an append-only, concurrency-safe dictionary mapping RDF terms (in
// Term.Key form) to dense integer IDs and back. IDs start at 1; ID 0 is
// reserved for NULL. The "ID-string" of a term is the raw uvarint encoding
// of its ID stored in a Go string — self-delimiting, so multi-part keys can
// concatenate ID-strings without separators, and the NULL ID-string is
// exactly algebra.Null.
//
// The dictionary is built once at dataset-load time (in term-of-first-use
// order over the triple stream, so IDs are deterministic for a given graph)
// and attached to engine.Dataset; query-time use is read-mostly.
type Dict struct {
	mu      sync.RWMutex
	ids     map[string]uint64
	entries []dictEntry // entries[id-1] for id ≥ 1
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint64)}
}

// Add returns the ID for the term key, assigning the next dense ID if the
// key is new. Safe for concurrent use.
func (d *Dict) Add(key string) uint64 {
	d.mu.RLock()
	id, ok := d.ids[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[key]; ok {
		return id
	}
	id = uint64(len(d.entries)) + 1
	e := dictEntry{key: key, idStr: string(binary.AppendUvarint(nil, id))}
	// Cache the parsed numeric value for literal terms so SUM/AVG never
	// re-parse the lexical form per row.
	if len(key) > 0 && key[0] == 'L' {
		if f, err := strconv.ParseFloat(key[1:], 64); err == nil {
			e.num, e.isNum = f, true
		}
	}
	d.ids[key] = id
	d.entries = append(d.entries, e)
	return id
}

// AddString returns the interned ID-string for the term key, assigning the
// next dense ID if the key is new — the form the store builders use.
func (d *Dict) AddString(key string) string {
	id := d.Add(key)
	d.mu.RLock()
	s := d.entries[id-1].idStr
	d.mu.RUnlock()
	return s
}

// Lookup returns the ID for a term key, or false if the key was never
// added.
func (d *Dict) Lookup(key string) (uint64, bool) {
	d.mu.RLock()
	id, ok := d.ids[key]
	d.mu.RUnlock()
	return id, ok
}

// Key returns the lexical Term.Key form for an ID. ID 0 (NULL) and unknown
// IDs return false.
func (d *Dict) Key(id uint64) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == 0 || id > uint64(len(d.entries)) {
		return "", false
	}
	return d.entries[id-1].key, true
}

// IDString returns the interned uvarint ID-string for an ID. NULL (ID 0)
// yields "\x00"; unknown IDs return false.
func (d *Dict) IDString(id uint64) (string, bool) {
	if id == 0 {
		return nullIDString, true
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id > uint64(len(d.entries)) {
		return "", false
	}
	return d.entries[id-1].idStr, true
}

// KeyString translates a lexical term key into its interned ID-string. Keys
// absent from the dictionary (query constants that never occur in the
// data) map to MissingIDString, which matches no data value.
func (d *Dict) KeyString(key string) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id, ok := d.ids[key]; ok {
		return d.entries[id-1].idStr
	}
	return MissingIDString
}

// Lex decodes an ID-string back to the lexical Term.Key form. The NULL
// ID-string decodes to "" with ok=true (callers emit algebra.Null
// themselves when needed); malformed or unknown ID-strings return false.
func (d *Dict) Lex(idStr string) (string, bool) {
	id, n := binary.Uvarint([]byte(idStr))
	if n != len(idStr) || n <= 0 {
		return "", false
	}
	if id == 0 {
		return "", true
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id > uint64(len(d.entries)) {
		return "", false
	}
	return d.entries[id-1].key, true
}

// NumericIDString returns the cached numeric value of the literal an
// ID-string denotes — the SUM/AVG fast path. Returns false for NULL,
// non-numeric terms and malformed ID-strings.
func (d *Dict) NumericIDString(idStr string) (float64, bool) {
	id, n := binary.Uvarint([]byte(idStr))
	if n != len(idStr) || n <= 0 || id == 0 {
		return 0, false
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id > uint64(len(d.entries)) {
		return 0, false
	}
	e := &d.entries[id-1]
	return e.num, e.isNum
}

// Len returns the number of distinct terms in the dictionary (excluding the
// reserved NULL ID).
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}
