package rdf

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	tests := []struct {
		term Term
		want string
	}{
		{NewIRI("http://ex.org/a"), "<http://ex.org/a>"},
		{NewLiteral("hello"), `"hello"`},
		{NewLiteral(`say "hi"`), `"say \"hi\""`},
		{NewLiteral("a\nb\tc\\d"), `"a\nb\tc\\d"`},
		{NewBlank("b0"), "_:b0"},
	}
	for _, tc := range tests {
		if got := tc.term.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.term, got, tc.want)
		}
	}
}

func TestTermKeyRoundTrip(t *testing.T) {
	terms := []Term{
		NewIRI("http://ex.org/a"),
		NewLiteral("42"),
		NewLiteral(""),
		NewBlank("x1"),
	}
	for _, tm := range terms {
		got := TermFromKey(tm.Key())
		if tm.Value == "" {
			continue // empty values are invalid terms; Key is still total
		}
		if got != tm {
			t.Errorf("TermFromKey(Key(%v)) = %v", tm, got)
		}
	}
}

func TestTermKeyDistinguishesKinds(t *testing.T) {
	iri := NewIRI("x")
	lit := NewLiteral("x")
	bn := NewBlank("x")
	if iri.Key() == lit.Key() || iri.Key() == bn.Key() || lit.Key() == bn.Key() {
		t.Errorf("keys collide across kinds: %q %q %q", iri.Key(), lit.Key(), bn.Key())
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	g := &Graph{}
	g.Add(
		T(NewIRI("http://ex.org/p1"), TypeTerm, NewIRI("http://ex.org/Product")),
		T(NewIRI("http://ex.org/p1"), NewIRI("http://ex.org/label"), NewLiteral("widget \"deluxe\"\nmodel")),
		T(NewBlank("o1"), NewIRI("http://ex.org/price"), NewLiteral("42.5")),
	)
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatalf("WriteNTriples: %v", err)
	}
	got, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if !reflect.DeepEqual(got.Triples, g.Triples) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got.Triples, g.Triples)
	}
}

func TestNTriplesRoundTripQuick(t *testing.T) {
	// Property: any literal value survives a write/read round trip.
	f := func(s string) bool {
		if !validUTF8NoControl(s) {
			return true
		}
		g := &Graph{}
		g.Add(T(NewIRI("http://e/s"), NewIRI("http://e/p"), NewLiteral(s)))
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			return false
		}
		got, err := ReadNTriples(&buf)
		if err != nil {
			return false
		}
		return len(got.Triples) == 1 && got.Triples[0].Object.Value == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func validUTF8NoControl(s string) bool {
	for _, r := range s {
		if r == 0xFFFD || (r < 0x20 && r != '\n' && r != '\r' && r != '\t') {
			return false
		}
	}
	return true
}

func TestNTriplesParsesForeignForms(t *testing.T) {
	in := strings.Join([]string{
		"# a comment",
		"",
		`<http://e/s> <http://e/p> "x"@en .`,
		`<http://e/s> <http://e/p> "12"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		`_:b1 <http://e/p> <http://e/o> .`,
	}, "\n")
	g, err := ReadNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if g.Len() != 3 {
		t.Fatalf("got %d triples, want 3", g.Len())
	}
	if g.Triples[0].Object != NewLiteral("x") {
		t.Errorf("language tag not dropped: %v", g.Triples[0].Object)
	}
	if g.Triples[1].Object != NewLiteral("12") {
		t.Errorf("datatype not dropped: %v", g.Triples[1].Object)
	}
	if g.Triples[2].Subject != NewBlank("b1") {
		t.Errorf("blank node subject: %v", g.Triples[2].Subject)
	}
}

func TestNTriplesErrors(t *testing.T) {
	bad := []string{
		`<http://e/s> <http://e/p> "x"`,     // missing dot
		`<http://e/s> <http://e/p .`,        // unterminated IRI
		`<http://e/s> <http://e/p> "x .`,    // unterminated literal
		`<http://e/s> "lit" <http://e/o> .`, // literal property is fine syntactically but object missing? actually valid shape
	}
	for _, line := range bad[:3] {
		if _, err := ReadNTriples(strings.NewReader(line)); err == nil {
			t.Errorf("ReadNTriples(%q) succeeded, want error", line)
		}
	}
}

func TestGraphProperties(t *testing.T) {
	g := &Graph{}
	p := NewIRI("http://e/p")
	q := NewIRI("http://e/q")
	g.Add(
		T(NewIRI("http://e/s1"), p, NewLiteral("1")),
		T(NewIRI("http://e/s2"), p, NewLiteral("2")),
		T(NewIRI("http://e/s1"), q, NewLiteral("3")),
	)
	props := g.Properties()
	if props["http://e/p"] != 2 || props["http://e/q"] != 1 {
		t.Errorf("Properties() = %v", props)
	}
}
