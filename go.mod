module rapidanalytics

go 1.23
