package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"rapidanalytics/internal/bench"

	ra "rapidanalytics"
)

// preparedIters is how many times each query re-runs per mode; planning
// cost amortizes across repeats on the prepared path only.
const preparedIters = 5

// PreparedResult is one row of BENCH_prepared.json: the same catalog query
// executed repeatedly with per-call compilation (unprepared) versus through
// Store.Prepare and the plan cache (prepared).
type PreparedResult struct {
	Query          string  `json:"query"`
	System         string  `json:"system"`
	Iters          int     `json:"iters"`
	UnpreparedNs   int64   `json:"unpreparedNs"`
	PreparedNs     int64   `json:"preparedNs"`
	PlanSpeedup    float64 `json:"planSpeedup"`
	PlanOnlyNs     int64   `json:"planOnlyNs"`
	CacheHitsAfter int64   `json:"cacheHitsAfter"`
}

// Prepared benchmarks the plan cache: each BSBM catalog query runs
// preparedIters times unprepared (Compile + QueryCompiled every call) and
// preparedIters times prepared (Prepare once warm, Execute repeatedly).
// Results go to stdout and BENCH_prepared.json.
func Prepared(h *bench.Harness) (string, error) {
	store := ra.NewBSBMStore(0, ra.DefaultOptions())
	sys := ra.RAPIDAnalytics
	ctx := context.Background()

	var rows []PreparedResult
	for _, id := range append(append([]string{}, gQueries...), mgBSBM...) {
		q, ok := bench.Get(id)
		if !ok {
			return "", fmt.Errorf("unknown catalog query %s", id)
		}

		// Unprepared: pay parsing + algebra + plan construction per call.
		planStart := time.Now()
		if _, err := ra.Compile(q.SPARQL); err != nil {
			return "", fmt.Errorf("%s: %w", id, err)
		}
		planOnly := time.Since(planStart)

		unpStart := time.Now()
		for i := 0; i < preparedIters; i++ {
			c, err := ra.Compile(q.SPARQL)
			if err != nil {
				return "", fmt.Errorf("%s: %w", id, err)
			}
			if _, _, err := store.QueryCompiled(sys, c); err != nil {
				return "", fmt.Errorf("%s unprepared: %w", id, err)
			}
		}
		unprepared := time.Since(unpStart)

		// Prepared: plan once, then cache hits.
		pq, err := store.Prepare(sys, q.SPARQL)
		if err != nil {
			return "", fmt.Errorf("%s prepare: %w", id, err)
		}
		prepStart := time.Now()
		for i := 0; i < preparedIters; i++ {
			pq, err = store.Prepare(sys, q.SPARQL)
			if err != nil {
				return "", fmt.Errorf("%s prepare: %w", id, err)
			}
			if _, _, err := pq.Execute(ctx); err != nil {
				return "", fmt.Errorf("%s prepared: %w", id, err)
			}
		}
		prepared := time.Since(prepStart)

		speedup := float64(unprepared) / float64(prepared)
		rows = append(rows, PreparedResult{
			Query:          id,
			System:         string(sys),
			Iters:          preparedIters,
			UnpreparedNs:   unprepared.Nanoseconds(),
			PreparedNs:     prepared.Nanoseconds(),
			PlanSpeedup:    speedup,
			PlanOnlyNs:     planOnly.Nanoseconds(),
			CacheHitsAfter: store.PlanCacheStats().Hits,
		})
	}

	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile("BENCH_prepared.json", append(out, '\n'), 0o644); err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("Prepared vs unprepared (BSBM, " + string(sys) + ", wall time per mode)\n")
	fmt.Fprintf(&b, "%-6s %14s %14s %9s\n", "query", "unprepared", "prepared", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %14s %14s %8.2fx\n", r.Query,
			time.Duration(r.UnpreparedNs), time.Duration(r.PreparedNs), r.PlanSpeedup)
	}
	stats := store.PlanCacheStats()
	fmt.Fprintf(&b, "plan cache: %d hits, %d misses, %d entries (wrote BENCH_prepared.json)\n",
		stats.Hits, stats.Misses, stats.Entries)
	return b.String(), nil
}
