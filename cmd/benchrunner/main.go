// Command benchrunner regenerates every table and figure of the paper's
// evaluation section (§5): Table 3 (single-grouping queries, BSBM and
// Chem2Bio2RDF), Figure 8(a–c) (multi-grouping queries on BSBM-500K,
// BSBM-2M and Chem2Bio2RDF), Table 4 (PubMed), the MR-cycle-count
// verification, and the RAPIDAnalytics ablations.
//
// Usage:
//
//	benchrunner                 # everything
//	benchrunner -exp table3     # one experiment
//	benchrunner -verify         # also cross-check every result vs oracle
//
// Experiments: table3, fig8a, fig8b, fig8c, table4, cycles, ablation,
// prepared (plan-cache speedup, writes BENCH_prepared.json), parallel
// (sequential vs parallel reduce, writes BENCH_parallel.json), dict
// (lexical vs dictionary-encoded data plane over the full MG catalog,
// writes BENCH_dict.json), disk (in-memory vs disk-backed DFS over the
// full MG catalog, writes BENCH_disk.json), stream (streaming vs
// materialised intermediates over the full MG catalog, writes
// BENCH_stream.json), planner (heuristic vs statistics-driven cost-based
// planner over the BSBM MG queries and the adversarially skewed SK
// stressors, writes BENCH_planner.json), serve (log-realistic concurrent
// HTTP workload against the serving layer: baseline vs cross-query shared
// scans + versioned result cache, writes BENCH_serve.json), all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rapidanalytics/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table3, fig8a, fig8b, fig8c, table4, cycles, ablation, prepared, parallel, dict, disk, stream, planner, serve, all")
		verify   = flag.Bool("verify", false, "cross-check every engine result against the in-memory oracle")
		scale    = flag.Float64("scale", 1, "dataset size multiplier (1 = default laptop scale)")
		traceOut = flag.String("trace-out", "", "write span trees of a traced MG1 run (all engines, bsbm-500k) as JSON to this file")
	)
	flag.Parse()

	h := bench.NewHarness(*verify)
	h.Loader.SizeMult = *scale
	run := func(name string, f func(*bench.Harness) (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		out, err := f(h)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	run("table3", Table3)
	run("fig8a", Fig8a)
	run("fig8b", Fig8b)
	run("fig8c", Fig8c)
	run("table4", Table4)
	run("cycles", Cycles)
	run("ablation", Ablation)
	run("prepared", Prepared)
	run("parallel", Parallel)
	run("dict", Dict)
	run("disk", Disk)
	run("stream", Stream)
	run("planner", Planner)
	run("serve", Serve)

	if *traceOut != "" {
		if err := writeTraceArtifact(h, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: trace-out: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeTraceArtifact runs MG1 on BSBM-500K with span tracing across all four
// engines and writes the span trees as a JSON array — the observability
// artifact the CI smoke job uploads.
func writeTraceArtifact(h *bench.Harness, path string) error {
	rs, err := h.RunTraced("MG1", "bsbm-500k", bench.Engines())
	if err != nil {
		return err
	}
	type tracedRun struct {
		Query   string          `json:"query"`
		Dataset string          `json:"dataset"`
		Engine  string          `json:"engine"`
		Span    json.RawMessage `json:"span"`
	}
	out := make([]tracedRun, 0, len(rs))
	for _, r := range rs {
		raw, err := json.Marshal(r.Span)
		if err != nil {
			return err
		}
		out = append(out, tracedRun{Query: r.Query, Dataset: r.Dataset, Engine: r.Engine, Span: raw})
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d traced MG1 span tree(s) to %s\n", len(out), path)
	return nil
}

var gQueries = []string{"G1", "G2", "G3", "G4"}
var mgBSBM = []string{"MG1", "MG2", "MG3", "MG4"}
var mgChem = []string{"MG6", "MG7", "MG8", "MG9", "MG10"}
var mgPubMed = []string{"MG11", "MG12", "MG13", "MG14", "MG15", "MG16", "MG17", "MG18"}

// Table3 regenerates both halves of Table 3.
func Table3(h *bench.Harness) (string, error) {
	res500k, err := h.RunAll(gQueries, "bsbm-500k", bench.Engines())
	if err != nil {
		return "", err
	}
	res2m, err := h.RunAll(gQueries, "bsbm-2m", bench.Engines())
	if err != nil {
		return "", err
	}
	chem, err := h.RunAll([]string{"G5", "G6", "G7", "G8", "G9"}, "chem", bench.Engines())
	if err != nil {
		return "", err
	}
	return bench.RenderTable3BSBM(res500k, res2m) + "\n" + bench.RenderTable3Chem(chem), nil
}

// Fig8a regenerates Figure 8(a): MG1–MG4 on BSBM-500K.
func Fig8a(h *bench.Harness) (string, error) {
	res, err := h.RunAll(mgBSBM, "bsbm-500k", bench.Engines())
	if err != nil {
		return "", err
	}
	return bench.RenderFigure("Figure 8(a): MG1-MG4 on BSBM-500K (10 nodes)", mgBSBM, res), nil
}

// Fig8b regenerates Figure 8(b): MG1–MG4 on BSBM-2M.
func Fig8b(h *bench.Harness) (string, error) {
	res, err := h.RunAll(mgBSBM, "bsbm-2m", bench.Engines())
	if err != nil {
		return "", err
	}
	return bench.RenderFigure("Figure 8(b): MG1-MG4 on BSBM-2M (50 nodes)", mgBSBM, res), nil
}

// Fig8c regenerates Figure 8(c): MG6–MG10 on Chem2Bio2RDF.
func Fig8c(h *bench.Harness) (string, error) {
	res, err := h.RunAll(mgChem, "chem", bench.Engines())
	if err != nil {
		return "", err
	}
	return bench.RenderFigure("Figure 8(c): MG6-MG10 on Chem2Bio2RDF (10 nodes)", mgChem, res), nil
}

// Table4 regenerates Table 4: MG11–MG18 on PubMed.
func Table4(h *bench.Harness) (string, error) {
	res, err := h.RunAll(mgPubMed, "pubmed", bench.Engines())
	if err != nil {
		return "", err
	}
	return bench.RenderTable4(res), nil
}

// Cycles verifies the MR-cycle counts across the whole catalog.
func Cycles(h *bench.Harness) (string, error) {
	var all []bench.RunResult
	groups := []struct {
		ids []string
		ds  string
	}{
		{gQueries, "bsbm-500k"},
		{[]string{"G5", "G6", "G7", "G8", "G9"}, "chem"},
		{mgBSBM, "bsbm-500k"},
		{mgChem, "chem"},
		{mgPubMed, "pubmed"},
	}
	for _, g := range groups {
		rs, err := h.RunAll(g.ids, g.ds, bench.Engines())
		if err != nil {
			return "", err
		}
		all = append(all, rs...)
	}
	return bench.RenderCycles(all), nil
}

// Ablation runs the RAPIDAnalytics design-choice ablations on the BSBM
// multi-grouping queries.
func Ablation(h *bench.Harness) (string, error) {
	var all []bench.RunResult
	for _, q := range append(append([]string{}, mgBSBM...), "MGA") {
		rs, err := h.RunAblation(q, "bsbm-500k")
		if err != nil {
			return "", err
		}
		all = append(all, rs...)
	}
	var b strings.Builder
	b.WriteString(bench.RenderAblation(all))
	return b.String(), nil
}
