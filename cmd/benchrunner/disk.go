package main

import (
	"encoding/json"
	"fmt"
	"os"

	"rapidanalytics/internal/bench"
)

// diskIters is how many times each query runs per backend; the report
// keeps the best wall time of each.
const diskIters = 2

// diskSpillThreshold is the map-side spill threshold both backends run
// with. It is deliberately tiny so the spill path triggers even on the
// small CI datasets; output is identical for every threshold.
const diskSpillThreshold = 4096

// Disk benchmarks the disk-backed (blockstore) DFS against the in-memory
// backend over the full multi-grouping catalog, checking on the way that
// both backends return identical result rows and identical job-for-job
// volume metrics (output bytes, stored bytes, shuffle and spill
// volumes). Results go to stdout and BENCH_disk.json; any divergence is
// an error, so CI fails when the storage planes drift. The harness's
// SizeMult carries over, so CI can run the same experiment on a tiny
// dataset.
func Disk(h *bench.Harness) (string, error) {
	rep, err := bench.CompareStorageBackends(bench.MGCatalog(), bench.Engines(), diskIters, h.Loader.SizeMult, diskSpillThreshold)
	if err != nil {
		return "", err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile("BENCH_disk.json", append(out, '\n'), 0o644); err != nil {
		return "", err
	}
	if !rep.AllIdentical {
		return "", fmt.Errorf("mem and disk backends diverged in rows or volume metrics (see BENCH_disk.json)")
	}
	if rep.TotalSpillRuns == 0 {
		return "", fmt.Errorf("spill path never triggered at threshold %d (see BENCH_disk.json)", rep.SpillThresholdBytes)
	}
	return bench.RenderDisk(rep) + "(wrote BENCH_disk.json)\n", nil
}
