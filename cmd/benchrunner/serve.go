package main

import (
	"encoding/json"
	"fmt"
	"os"

	"rapidanalytics/internal/bench"
	"rapidanalytics/internal/loadgen"
)

// Serve benchmarks the serving layer under a log-realistic concurrent
// workload (Zipf-skewed template repetition with hot-template bursts over
// the full query catalog): a baseline server against one with cross-query
// shared scans and the versioned result cache. Results go to stdout and
// BENCH_serve.json. The run fails when any request errors, when any
// template's rows diverge between configurations (or within one), when the
// optimized configuration never shared a scan cycle, or when the result
// cache never hit — so CI catches both correctness drift and the
// optimizations silently disengaging. The QPS speedup is reported but not
// gated: at reduced -scale the work per query is too small for the ratio
// to be stable.
func Serve(h *bench.Harness) (string, error) {
	rep, err := loadgen.CompareServing(h.Loader.SizeMult)
	if err != nil {
		return "", err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile("BENCH_serve.json", append(out, '\n'), 0o644); err != nil {
		return "", err
	}
	for _, lv := range rep.Levels {
		if lv.Metrics.Errors > 0 {
			return "", fmt.Errorf("%s replay had %d failed requests (see BENCH_serve.json)", lv.Name, lv.Metrics.Errors)
		}
	}
	if !rep.RowsIdentical {
		return "", fmt.Errorf("row divergence between serving configurations (see BENCH_serve.json)")
	}
	opt := rep.Levels[len(rep.Levels)-1]
	if opt.SharedScan.SharedCycles == 0 {
		return "", fmt.Errorf("shared-scan scheduler never shared a cycle (see BENCH_serve.json)")
	}
	if opt.ResultCache.Hits == 0 {
		return "", fmt.Errorf("result cache never hit (see BENCH_serve.json)")
	}
	return loadgen.RenderServe(rep) + "(wrote BENCH_serve.json)\n", nil
}
