package main

import (
	"encoding/json"
	"fmt"
	"os"

	"rapidanalytics/internal/bench"
)

// streamIters is how many times each query runs per mode; the report
// keeps the best wall time of each.
const streamIters = 2

// Stream benchmarks the vectorized streaming plane against fully
// materialised intermediates over the full multi-grouping catalog,
// checking on the way that both modes return identical result rows and
// identical job-for-job volume metrics (modulo the Streamed* counters),
// and that streaming strictly reduces the bytes materialised into the
// storage backend. Results go to stdout and BENCH_stream.json; any
// divergence is an error, so CI fails when the streaming plane drifts.
// The harness's SizeMult carries over for reduced-scale CI smoke runs.
func Stream(h *bench.Harness) (string, error) {
	rep, err := bench.CompareStreamingModes(bench.MGCatalog(), bench.Engines(), streamIters, h.Loader.SizeMult)
	if err != nil {
		return "", err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile("BENCH_stream.json", append(out, '\n'), 0o644); err != nil {
		return "", err
	}
	if !rep.AllIdentical {
		return "", fmt.Errorf("streaming and materialising modes diverged in rows or volume metrics (see BENCH_stream.json)")
	}
	if rep.TotalStreamedRecords == 0 {
		return "", fmt.Errorf("streaming plane never engaged across the catalog (see BENCH_stream.json)")
	}
	if !rep.StorageReduced {
		return "", fmt.Errorf("streaming did not reduce materialised stored bytes (see BENCH_stream.json)")
	}
	return bench.RenderStream(rep) + "(wrote BENCH_stream.json)\n", nil
}
