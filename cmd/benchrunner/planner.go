package main

import (
	"encoding/json"
	"fmt"
	"os"

	"rapidanalytics/internal/bench"
)

// Planner benchmarks the statistics-driven cost-based planner against the
// fixed star-0-first heuristic over the BSBM multi-grouping queries (on the
// uniform graph) and the SK stressors (on both adversarially skewed
// graphs). Every run is verified against the in-memory oracle; the report
// additionally gates on the cost-based plans being strictly cheaper in
// simulated seconds on the skewed datasets, and on at least one mid-query
// re-plan having fired (visible as a "re-plan" planner span). Results go
// to stdout and BENCH_planner.json; any gate failure is an error, so CI
// fails when the planner drifts. The harness's SizeMult carries over for
// reduced-scale CI smoke runs.
func Planner(h *bench.Harness) (string, error) {
	rep, err := bench.ComparePlannerModes(bench.PlannerCatalog(), h.Loader.SizeMult)
	if err != nil {
		return "", err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile("BENCH_planner.json", append(out, '\n'), 0o644); err != nil {
		return "", err
	}
	if !rep.AllRowsIdentical {
		return "", fmt.Errorf("heuristic and cost-based planners returned different rows (see BENCH_planner.json)")
	}
	if !rep.SkewFaster {
		return "", fmt.Errorf("cost-based plans not cheaper than heuristic on the skewed datasets (see BENCH_planner.json)")
	}
	if !rep.ReplanObserved {
		return "", fmt.Errorf("no mid-query re-plan fired across the catalog (see BENCH_planner.json)")
	}
	return bench.RenderPlanner(rep) + "(wrote BENCH_planner.json)\n", nil
}
