package main

import (
	"encoding/json"
	"os"

	"rapidanalytics/internal/bench"
)

// parallelIters is how many times each query runs per reduce mode; the
// report keeps the best wall time of each.
const parallelIters = 3

// Parallel benchmarks the engine's parallel reduce phase against the forced
// sequential path on the multi-grouping BSBM queries at the largest
// generated dataset, checking on the way that both modes return identical
// rows and identical per-cycle volume metrics. Results go to stdout and
// BENCH_parallel.json. The harness's SizeMult carries over, so CI can run
// the same experiment on a tiny dataset.
func Parallel(h *bench.Harness) (string, error) {
	rep, err := bench.CompareReduceModes("bsbm-2m", mgBSBM, bench.Engines(), parallelIters, h.Loader.SizeMult)
	if err != nil {
		return "", err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile("BENCH_parallel.json", append(out, '\n'), 0o644); err != nil {
		return "", err
	}
	return bench.RenderParallel(rep) + "(wrote BENCH_parallel.json)\n", nil
}
