package main

import (
	"encoding/json"
	"fmt"
	"os"

	"rapidanalytics/internal/bench"
)

// dictIters is how many times each query runs per plane; the report keeps
// the best wall time of each.
const dictIters = 3

// Dict benchmarks the dictionary-encoded data plane against the lexical
// plane over the full multi-grouping catalog on its paper deployments,
// checking on the way that both planes return byte-identical result rows.
// Results go to stdout and BENCH_dict.json; non-identical rows are an
// error, so CI fails when the planes diverge. The harness's SizeMult
// carries over, so CI can run the same experiment on a tiny dataset.
func Dict(h *bench.Harness) (string, error) {
	rep, err := bench.CompareDictModes(bench.MGCatalog(), bench.Engines(), dictIters, h.Loader.SizeMult)
	if err != nil {
		return "", err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile("BENCH_dict.json", append(out, '\n'), 0o644); err != nil {
		return "", err
	}
	if !rep.AllRowsIdentical {
		return "", fmt.Errorf("dictionary and lexical planes returned different result rows (see BENCH_dict.json)")
	}
	return bench.RenderDict(rep) + "(wrote BENCH_dict.json)\n", nil
}
