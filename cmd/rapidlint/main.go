// Command rapidlint runs the rapidanalytics invariant analyzers (maporder,
// ctxloop, hotalloc, spansafe, errtyped — see DESIGN.md "Invariants") over
// Go packages.
//
// Standalone multichecker:
//
//	go run ./cmd/rapidlint ./...
//
// exits 0 when the tree is clean, 1 with one "file:line:col: analyzer:
// message" line per finding otherwise.
//
// As a vet tool, speaking go vet's unitchecker protocol (-V=full version
// handshake, then one JSON .cfg per package):
//
//	go build -o /tmp/rapidlint ./cmd/rapidlint
//	go vet -vettool=/tmp/rapidlint ./...
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"rapidanalytics/internal/lint"
	"rapidanalytics/internal/lint/driver"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 1 && args[0] == "-V=full" {
		// go vet fingerprints the tool for its action cache; the line must
		// read "<name> version <buildid>".
		fmt.Println("rapidlint version v1")
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		// go vet asks which analyzer flags the tool accepts; rapidlint's
		// suite is not configurable.
		fmt.Println("[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vetUnit(args[0])
	}
	if len(args) == 0 || args[0] == "-help" || args[0] == "--help" || args[0] == "help" {
		usage()
		return 2
	}
	diags, err := driver.Run("", lint.Analyzers(), args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rapidlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rapidlint <packages>   (e.g. rapidlint ./...)")
	fmt.Fprintln(os.Stderr, "\nanalyzers:")
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
}

// vetConfig is the subset of go vet's unitchecker JSON config rapidlint
// consumes: the unit's sources plus the import-path → export-file mapping
// needed to type-check it.
type vetConfig struct {
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package unit described by a go vet .cfg file.
// Diagnostics go to stderr and yield exit status 2, matching what go vet
// expects from a vettool.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rapidlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rapidlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// go vet hands test variants of each package to the tool too;
		// rapidlint's invariants are production-code properties, so test
		// files stay out — matching the standalone driver.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return typecheckFailed(&cfg, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		// An external test package (pkg_test) holds only test files.
		if err := writeVetx(&cfg); err != nil {
			fmt.Fprintln(os.Stderr, "rapidlint:", err)
			return 1
		}
		return 0
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailed(&cfg, err)
	}

	diags, err := driver.Analyze(&driver.Package{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rapidlint:", err)
		return 1
	}
	if err := writeVetx(&cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rapidlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Position, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typecheckFailed honors SucceedOnTypecheckFailure: go vet sets it when the
// compiler will report the same errors anyway, so the vettool stays quiet.
func typecheckFailed(cfg *vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		if werr := writeVetx(cfg); werr != nil {
			fmt.Fprintln(os.Stderr, "rapidlint:", werr)
			return 1
		}
		return 0
	}
	fmt.Fprintln(os.Stderr, "rapidlint:", err)
	return 1
}

// writeVetx emits the (empty) serialized-facts file go vet requires every
// vettool to produce; rapidlint's analyzers exchange no cross-package facts.
func writeVetx(cfg *vetConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, nil, 0o666)
}
