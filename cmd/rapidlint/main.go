// Command rapidlint runs the rapidanalytics invariant analyzers (maporder,
// ctxloop, hotalloc, spansafe, errtyped, closecheck, lockorder, cachekey —
// see DESIGN.md "Invariants") over Go packages.
//
// Standalone multichecker:
//
//	go run ./cmd/rapidlint ./...
//
// exits 0 when the tree is clean, 1 with one "file:line:col: analyzer:
// message" line per finding otherwise. Flags:
//
//	-json    emit machine-readable diagnostics (a JSON array) on stdout
//	-gha     emit GitHub Actions workflow annotations (::error lines)
//	-tests   additionally analyze _test.go files with the lifecycle
//	         analyzers (ctxloop, closecheck); the allocation/span/ordering
//	         analyzers stay production-only
//
// As a vet tool, speaking go vet's unitchecker protocol (-V=full version
// handshake, then one JSON .cfg per package), including fact files: each
// unit's exported interprocedural facts are serialized to its .vetx output
// and dependency facts are read back from the .vetx files go vet lists in
// the unit's PackageVetx map:
//
//	go build -o /tmp/rapidlint ./cmd/rapidlint
//	go vet -vettool=/tmp/rapidlint ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"rapidanalytics/internal/lint"
	"rapidanalytics/internal/lint/analysis"
	"rapidanalytics/internal/lint/driver"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 1 && args[0] == "-V=full" {
		// go vet fingerprints the tool for its action cache; the line must
		// read "<name> version <buildid>".
		fmt.Println("rapidlint version v3")
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		// go vet asks which analyzer flags the tool accepts; rapidlint's
		// suite is not configurable.
		fmt.Println("[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vetUnit(args[0])
	}

	fs := flag.NewFlagSet("rapidlint", flag.ContinueOnError)
	fs.Usage = usage
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	ghaOut := fs.Bool("gha", false, "emit GitHub Actions ::error annotations")
	tests := fs.Bool("tests", false, "also analyze _test.go files with the lifecycle analyzers")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		usage()
		return 2
	}
	diags, err := driver.RunOpts("", driver.Options{Tests: *tests},
		lint.Analyzers(), lint.TestAnalyzers(), fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rapidlint:", err)
		return 2
	}
	switch {
	case *jsonOut:
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "rapidlint:", err)
			return 2
		}
	case *ghaOut:
		for _, d := range diags {
			fmt.Println(ghaAnnotation(d))
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rapidlint [-json|-gha] [-tests] <packages>   (e.g. rapidlint ./...)")
	fmt.Fprintln(os.Stderr, "\nanalyzers:")
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintln(os.Stderr, "\n-tests additionally applies to _test.go files:")
	for _, a := range lint.TestAnalyzers() {
		fmt.Fprintf(os.Stderr, "  %-10s\n", a.Name)
	}
}

// jsonDiagnostic is the -json wire shape: one object per finding, stable
// field names for CI tooling.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, diags []driver.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Position.Filename,
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ghaAnnotation renders one finding as a GitHub Actions workflow command,
// which the Actions runner turns into an inline PR annotation.
func ghaAnnotation(d driver.Diagnostic) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=rapidlint(%s)::%s",
		ghaEscapeProp(d.Position.Filename), d.Position.Line, d.Position.Column,
		ghaEscapeProp(d.Analyzer), ghaEscapeData(d.Message))
}

// ghaEscapeData escapes the message payload of a workflow command.
func ghaEscapeData(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// ghaEscapeProp escapes a workflow-command property value.
func ghaEscapeProp(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}

// vetConfig is the subset of go vet's unitchecker JSON config rapidlint
// consumes: the unit's sources, the import-path → export-file mapping
// needed to type-check it, and the fact-file plumbing (PackageVetx in,
// VetxOutput out).
type vetConfig struct {
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package unit described by a go vet .cfg file.
// Diagnostics go to stderr and yield exit status 2, matching what go vet
// expects from a vettool.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rapidlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rapidlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	for _, a := range lint.Analyzers() {
		analysis.RegisterFactTypes(a.FactTypes...)
	}
	// Dependency facts: go vet hands over the .vetx file of every import;
	// each embeds its own transitive closure, so decoding them all
	// reconstructs the full interprocedural environment.
	env := analysis.NewEnv()
	for _, vetx := range cfg.PackageVetx {
		fdata, err := os.ReadFile(vetx)
		if err != nil || len(fdata) == 0 {
			continue // a dependency exported no facts
		}
		if err := env.Decode(fdata); err != nil {
			fmt.Fprintf(os.Stderr, "rapidlint: facts %s: %v\n", vetx, err)
			return 1
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// go vet hands test variants of each package to the tool too;
		// rapidlint's vet mode stays production-only, so test files are
		// skipped — matching the standalone driver's default mode (use
		// `rapidlint -tests` for _test.go coverage).
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return typecheckFailed(&cfg, env, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		// An external test package (pkg_test) holds only test files.
		if err := writeVetx(&cfg, env); err != nil {
			fmt.Fprintln(os.Stderr, "rapidlint:", err)
			return 1
		}
		return 0
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailed(&cfg, env, err)
	}

	diags, err := driver.Analyze(&driver.Package{
		ImportPath: cfg.ImportPath,
		BasePath:   cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, lint.Analyzers(), env)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rapidlint:", err)
		return 1
	}
	if err := writeVetx(&cfg, env); err != nil {
		fmt.Fprintln(os.Stderr, "rapidlint:", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Position, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typecheckFailed honors SucceedOnTypecheckFailure: go vet sets it when the
// compiler will report the same errors anyway, so the vettool stays quiet.
func typecheckFailed(cfg *vetConfig, env *analysis.Env, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		if werr := writeVetx(cfg, env); werr != nil {
			fmt.Fprintln(os.Stderr, "rapidlint:", werr)
			return 1
		}
		return 0
	}
	fmt.Fprintln(os.Stderr, "rapidlint:", err)
	return 1
}

// writeVetx emits the serialized-facts file go vet requires every vettool
// to produce: the unit's exported facts plus its dependencies' (so direct
// importers see the transitive closure).
func writeVetx(cfg *vetConfig, env *analysis.Env) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	data, err := env.EncodeAll()
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.VetxOutput, data, 0o666)
}
