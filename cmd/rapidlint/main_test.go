package main

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the rapidlint binary into a temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rapidlint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building rapidlint: %v\n%s", err, out)
	}
	return bin
}

// TestVettoolClean drives the binary through go vet's unitchecker protocol
// (-V=full handshake, per-package .cfg units) over a clean engine package.
func TestVettoolClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs go vet; skipped in -short")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/codec/", "./internal/obs/")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean packages failed: %v\n%s", err, out)
	}
}

// TestVettoolFindsViolations points go vet at a fixture package with known
// violations and expects the tool's diagnostics to fail the vet run.
func TestVettoolFindsViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs go vet; skipped in -short")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin,
		"rapidanalytics/internal/lint/maporder/testdata/src/maporder_fx")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on a violating fixture:\n%s", out)
	}
	if !strings.Contains(string(out), "maporder") {
		t.Fatalf("vet output carries no maporder diagnostic:\n%s", out)
	}
}

// TestJSONOutput: -json renders findings as a parseable array with file,
// position, analyzer and message — the contract external tooling consumes.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and loads packages; skipped in -short")
	}
	bin := buildTool(t)
	cmd := exec.Command(bin, "-json", "rapidanalytics/internal/lint/hotalloc/testdata/src/hotalloc_fx")
	cmd.Dir = "../.."
	out, err := cmd.Output()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit status 1 on findings, got %v\n%s", err, out)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out, &diags); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("-json reported no findings on a violating fixture")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Fatalf("incomplete diagnostic: %+v", d)
		}
	}
}

// TestGHAOutput: -gha emits one ::error workflow command per finding, with
// escaped properties, so GitHub annotates the offending lines.
func TestGHAOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and loads packages; skipped in -short")
	}
	bin := buildTool(t)
	cmd := exec.Command(bin, "-gha", "rapidanalytics/internal/lint/hotalloc/testdata/src/hotalloc_fx")
	cmd.Dir = "../.."
	out, err := cmd.Output()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit status 1 on findings, got %v\n%s", err, out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) == 0 {
		t.Fatal("-gha emitted nothing on a violating fixture")
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "::error file=") {
			t.Fatalf("not a workflow command: %q", line)
		}
		if !strings.Contains(line, ",line=") || !strings.Contains(line, "title=rapidlint(") {
			t.Fatalf("annotation missing position or title: %q", line)
		}
	}
}

// TestStandaloneFindsViolations covers the multichecker mode's exit-status
// contract: findings print to stdout and yield exit status 1.
func TestStandaloneFindsViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and loads packages; skipped in -short")
	}
	bin := buildTool(t)
	cmd := exec.Command(bin, "rapidanalytics/internal/lint/hotalloc/testdata/src/hotalloc_fx")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit status 1 on findings, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "hotalloc") {
		t.Fatalf("output carries no hotalloc diagnostic:\n%s", out)
	}
}
