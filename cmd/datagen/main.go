// Command datagen writes one of the three synthetic evaluation datasets
// (BSBM e-commerce, Chem2Bio2RDF chemogenomics, PubMed bibliographic) to an
// N-Triples file.
//
// Usage:
//
//	datagen -dataset bsbm -scale 600 -o bsbm.nt
//	datagen -dataset pubmed -scale 3000 -o pubmed.nt
package main

import (
	"flag"
	"fmt"
	"os"

	"rapidanalytics/internal/datagen"
	"rapidanalytics/internal/rdf"
)

func main() {
	var (
		dataset = flag.String("dataset", "bsbm", "bsbm, chem or pubmed")
		scale   = flag.Int("scale", 0, "primary entity count (products / compounds / publications); 0 = default")
		seed    = flag.Int64("seed", 0, "generator seed; 0 = dataset default")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *rdf.Graph
	switch *dataset {
	case "bsbm":
		cfg := datagen.BSBMSmall()
		if *scale > 0 {
			cfg.Products = *scale
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		g = datagen.GenerateBSBM(cfg)
	case "chem":
		cfg := datagen.ChemDefault()
		if *scale > 0 {
			cfg.Compounds = *scale
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		g = datagen.GenerateChem(cfg)
	case "pubmed":
		cfg := datagen.PubMedDefault()
		if *scale > 0 {
			cfg.Publications = *scale
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		g = datagen.GeneratePubMed(cfg)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dataset)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rdf.WriteNTriples(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d triples\n", g.Len())
}
