// Command rapidanalytics runs a single SPARQL analytical query from the
// paper's catalog (or from a file) through one or all of the four engines,
// printing the result table and execution statistics.
//
// Usage:
//
//	rapidanalytics -query MG1 -dataset bsbm-500k -system rapidanalytics
//	rapidanalytics -query MG3 -dataset bsbm-500k -all -verify
//	rapidanalytics -file q.rq -data graph.nt -system hive-naive
//	rapidanalytics -query MG1 -explain
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rapidanalytics/internal/bench"
	"rapidanalytics/internal/core"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/rapid"

	ra "rapidanalytics"
)

func main() {
	var (
		queryID  = flag.String("query", "", "catalog query id (G1..G9, MG1..MG18)")
		file     = flag.String("file", "", "file containing a SPARQL query (alternative to -query)")
		dataset  = flag.String("dataset", "bsbm-500k", "catalog dataset (bsbm-500k, bsbm-2m, chem, pubmed)")
		data     = flag.String("data", "", "N-Triples file to query instead of a catalog dataset")
		system   = flag.String("system", "rapidanalytics", "engine: rapidanalytics, rapid+, hive-naive, hive-mqo")
		all      = flag.Bool("all", false, "run all four engines and compare")
		verify   = flag.Bool("verify", false, "cross-check results against the in-memory oracle")
		explain  = flag.Bool("explain", false, "print the optimizer's plan explanation and exit")
		rows     = flag.Int("rows", 10, "result rows to print (0 = all)")
		trace    = flag.String("trace", "", "execution trace: table (per-cycle stats) or spans (hierarchical span tree)")
		traceOut = flag.String("trace-out", "", "write the captured span trees as JSON to this file")
		format   = flag.String("format", "table", "result format: table or csv")
		storage  = flag.String("storage", "", "DFS backend: mem or disk (empty honors $RAPID_STORAGE, default mem)")
		dataDir  = flag.String("data-dir", "", "root directory for -storage disk (empty = fresh temp dir)")
		shards   = flag.Int("shards", 0, "disk backend shard directory count (0 = default)")
		spill    = flag.Int64("spill-threshold", 0, "map-side spill threshold in bytes (0 disables spilling)")
		costPlan = flag.Bool("cost-planner", true, "statistics-driven join ordering, map-join sizing and re-planning (false = fixed heuristic)")
		replan   = flag.Float64("replan-ratio", 0, "mid-query re-plan trigger: estimate/observed mismatch ratio (0 = default 4, negative disables re-planning)")
	)
	flag.Parse()
	st := storageOpts{storage: *storage, dataDir: *dataDir, shards: *shards, spill: *spill, costPlanner: *costPlan, replanRatio: *replan}
	if *trace != "" && *trace != "table" && *trace != "spans" {
		fatal(fmt.Errorf("-trace must be empty, %q or %q", "table", "spans"))
	}

	query, err := resolveQuery(*queryID, *file)
	if err != nil {
		fatal(err)
	}
	if *explain {
		out, err := ra.Explain(query)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	if *data != "" {
		runOnFile(query, *data, *system, *all, *verify, *rows, *trace, *traceOut, *format, st)
		return
	}
	runOnCatalogDataset(query, *queryID, *dataset, *system, *all, *verify, *rows, *trace, *traceOut, st)
}

// storageOpts carries the storage-backend and planner flags into both run
// paths.
type storageOpts struct {
	storage     string
	dataDir     string
	shards      int
	spill       int64
	costPlanner bool
	replanRatio float64
}

func resolveQuery(queryID, file string) (string, error) {
	switch {
	case queryID != "":
		q, ok := bench.Get(queryID)
		if !ok {
			return "", fmt.Errorf("unknown catalog query %q (have %v)", queryID, bench.IDs())
		}
		return q.SPARQL, nil
	case file != "":
		b, err := os.ReadFile(file)
		if err != nil {
			return "", err
		}
		return string(b), nil
	default:
		return "", fmt.Errorf("one of -query or -file is required")
	}
}

func runOnFile(query, dataFile, system string, all, verify bool, rows int, trace, traceOut, format string, st storageOpts) {
	f, err := os.Open(dataFile)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	opts := ra.DefaultOptions()
	opts.Storage = st.storage
	opts.DataDir = st.dataDir
	opts.StorageShards = st.shards
	opts.SpillThresholdBytes = st.spill
	opts.CostBasedPlanner = st.costPlanner
	if st.replanRatio != 0 {
		opts.ReplanRatio = st.replanRatio
	}
	store := ra.NewStore(opts)
	if err := store.LoadNTriples(f); err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d triples from %s\n\n", store.NumTriples(), dataFile)
	systems := []ra.System{ra.System(system)}
	if all {
		systems = ra.Systems()
	}
	var oracle *ra.Result
	if verify {
		oracle, _, err = store.Query(ra.Reference, query)
		if err != nil {
			fatal(err)
		}
	}
	ctx := context.Background()
	if trace == "spans" || traceOut != "" {
		ctx = ra.WithTracing(ctx)
	}
	var spans []*ra.TraceSpan
	for _, sys := range systems {
		res, stats, err := store.QueryContext(ctx, sys, query)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", sys, err))
		}
		if format == "csv" {
			printCSV(res)
		} else {
			printRun(string(sys), res, stats, rows)
		}
		switch trace {
		case "table":
			fmt.Println(stats.Trace())
		case "spans":
			fmt.Println(stats.TraceTree())
		}
		if stats.Span != nil {
			spans = append(spans, stats.Span)
		}
		if verify && res.Len() != oracle.Len() {
			fatal(fmt.Errorf("%s: %d rows, oracle has %d", sys, res.Len(), oracle.Len()))
		}
	}
	writeTraceFile(traceOut, spans)
	if verify {
		fmt.Println("verified: all runs match the oracle row count")
	}
}

func runOnCatalogDataset(query, queryID, dataset, system string, all, verify bool, rows int, trace, traceOut string, st storageOpts) {
	if queryID == "" {
		fatal(fmt.Errorf("-dataset requires a catalog -query; use -data for ad-hoc queries"))
	}
	h := bench.NewHarness(verify)
	h.Loader.Storage = st.storage
	h.Loader.DataDir = st.dataDir
	h.Loader.Shards = st.shards
	h.Loader.SpillThresholdBytes = st.spill
	engines := bench.Engines()
	if !st.costPlanner {
		engines = bench.HeuristicEngines()
	}
	if st.replanRatio != 0 {
		for _, e := range engines {
			switch t := e.(type) {
			case *rapid.Engine:
				t.ReplanRatio = st.replanRatio
			case *core.Engine:
				t.Opts.ReplanRatio = st.replanRatio
			}
		}
	}
	if !all {
		var filtered []engine.Engine
		for _, e := range engines {
			if systemName(e.Name()) == system {
				filtered = append(filtered, e)
			}
		}
		if len(filtered) == 0 {
			fatal(fmt.Errorf("unknown system %q", system))
		}
		engines = filtered
	}
	run := h.Run
	if trace == "spans" || traceOut != "" {
		run = h.RunTraced
	}
	rs, err := run(queryID, dataset, engines)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s\n\n", queryID, dataset)
	var spans []*ra.TraceSpan
	for _, r := range rs {
		fmt.Printf("%-16s cycles=%d (map-only %d)  simulated=%.0fs  shuffled=%s  materialized=%s  rows=%d",
			r.Engine, r.Cycles, r.MapOnlyCycles, r.SimSeconds, human(r.ShuffleBytes), human(r.MaterializedBytes), r.Rows)
		if r.Verified {
			fmt.Print("  [verified]")
		}
		fmt.Println()
		if trace == "table" {
			fmt.Printf("    phase walls: map=%s shuffle-sort=%s reduce=%s\n",
				r.MapWall.Round(time.Microsecond),
				r.ShuffleSortWall.Round(time.Microsecond),
				r.ReduceWall.Round(time.Microsecond))
		}
		if trace == "spans" && r.Span != nil {
			fmt.Println(r.Span.Tree())
		}
		if r.Span != nil {
			spans = append(spans, r.Span)
		}
	}
	writeTraceFile(traceOut, spans)
	_ = rows
	_ = query
}

// writeTraceFile writes the captured span trees as a JSON array, one element
// per traced run. No-op when path is empty.
func writeTraceFile(path string, spans []*ra.TraceSpan) {
	if path == "" {
		return
	}
	raw, err := json.MarshalIndent(spans, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d span tree(s) to %s\n", len(spans), path)
}

func systemName(display string) string {
	switch display {
	case "Hive (Naive)":
		return "hive-naive"
	case "Hive (MQO)":
		return "hive-mqo"
	case "RAPID+ (Naive)":
		return "rapid+"
	case "RAPIDAnalytics":
		return "rapidanalytics"
	}
	return display
}

func printRun(system string, res *ra.Result, stats *ra.Stats, maxRows int) {
	fmt.Printf("== %s: %d rows, %d MR cycles (%d map-only), simulated %.0fs ==\n",
		system, res.Len(), stats.MRCycles, stats.MapOnlyCycles, stats.SimulatedSeconds)
	rows := res.Rows()
	if maxRows > 0 && len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	for _, c := range res.Columns {
		fmt.Printf("%s\t", c)
	}
	fmt.Println()
	for _, r := range rows {
		for _, v := range r {
			fmt.Printf("%s\t", v)
		}
		fmt.Println()
	}
	if maxRows > 0 && res.Len() > maxRows {
		fmt.Printf("... (%d more rows)\n", res.Len()-maxRows)
	}
	fmt.Println()
}

// printCSV writes the result as RFC-4180-ish CSV to stdout.
func printCSV(res *ra.Result) {
	w := csv.NewWriter(os.Stdout)
	_ = w.Write(res.Columns)
	for _, row := range res.Rows() {
		_ = w.Write(row)
	}
	w.Flush()
}

func human(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rapidanalytics:", err)
	os.Exit(1)
}
