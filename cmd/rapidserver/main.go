// Command rapidserver serves SPARQL analytical queries over HTTP from one
// in-memory store, with a plan cache, per-request timeouts/cancellation,
// and bounded-concurrency admission control.
//
// Usage:
//
//	rapidserver -gen bsbm -addr :8085
//	rapidserver -data graph.nt -system rapidanalytics -max-concurrent 16
//
// Endpoints:
//
//	GET  /sparql?query=...&system=...&format=json|tsv
//	POST /sparql            (form-encoded query= or application/sparql-query body)
//	GET  /healthz
//	GET  /metrics           (Prometheus text format)
//	GET  /debug/queries     (slow-query log with span traces, newest first)
//	GET  /debug/pprof/      (runtime profiling)
//
// SIGINT/SIGTERM drain in-flight queries before exiting (graceful
// shutdown).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rapidanalytics/internal/server"

	ra "rapidanalytics"
)

func main() {
	var (
		addr          = flag.String("addr", ":8085", "listen address")
		data          = flag.String("data", "", "N-Triples file to serve")
		gen           = flag.String("gen", "", "built-in generator to serve: bsbm, chem, pubmed")
		size          = flag.Int("size", 0, "generator size (products/compounds/publications; 0 = default)")
		system        = flag.String("system", string(ra.RAPIDAnalytics), "default engine when requests name none")
		maxConcurrent = flag.Int("max-concurrent", 0, "in-flight query cap (0 = 2x GOMAXPROCS)")
		queueTimeout  = flag.Duration("queue-timeout", 2*time.Second, "max admission queue wait before 503")
		queryTimeout  = flag.Duration("query-timeout", 60*time.Second, "per-query execution deadline")
		cacheSize     = flag.Int("plan-cache", 0, "LRU plan cache entries (0 = default 128, negative disables)")
		nodes         = flag.Int("nodes", 0, "simulated cluster size (0 = default 10)")
		slowThreshold = flag.Duration("slow-query-threshold", 250*time.Millisecond, "wall time at which a query enters the slow-query log")
		slowLogSize   = flag.Int("slow-query-log", 128, "slow-query ring buffer capacity")
		storage       = flag.String("storage", "", "DFS backend: mem or disk (empty honors $RAPID_STORAGE, default mem)")
		dataDir       = flag.String("data-dir", "", "root directory for -storage disk (empty = fresh temp dir)")
		shards        = flag.Int("shards", 0, "disk backend shard directory count (0 = default)")
		spill         = flag.Int64("spill-threshold", 0, "map-side spill threshold in bytes (0 disables spilling)")
		costPlan      = flag.Bool("cost-planner", true, "statistics-driven join ordering, map-join sizing and re-planning (false = fixed heuristic)")
		replan        = flag.Float64("replan-ratio", 0, "mid-query re-plan trigger: estimate/observed mismatch ratio (0 = default 4, negative disables re-planning)")
		sharedScans   = flag.Bool("shared-scans", true, "batch concurrent queries scanning the same file range into one shared pass")
		scanWindow    = flag.Duration("shared-scan-window", 0, "shared-scan cycle collection window (0 = default 2ms)")
		resultCache   = flag.Int64("result-cache-bytes", 64<<20, "versioned result/sub-result cache byte budget (0 disables)")
	)
	flag.Parse()

	opts := ra.DefaultOptions()
	opts.PlanCacheSize = *cacheSize
	if *nodes > 0 {
		opts.Nodes = *nodes
	}
	opts.Storage = *storage
	opts.DataDir = *dataDir
	opts.StorageShards = *shards
	opts.SpillThresholdBytes = *spill
	opts.CostBasedPlanner = *costPlan
	if *replan != 0 {
		opts.ReplanRatio = *replan
	}
	opts.SharedScans = *sharedScans
	opts.SharedScanWindow = *scanWindow
	opts.ResultCacheBytes = *resultCache

	store, err := buildStore(*data, *gen, *size, opts)
	if err != nil {
		log.Fatalf("rapidserver: %v", err)
	}
	log.Printf("serving %d triples", store.NumTriples())

	srv := server.New(store, server.Config{
		DefaultSystem:      ra.System(*system),
		MaxConcurrent:      *maxConcurrent,
		QueueTimeout:       *queueTimeout,
		QueryTimeout:       *queryTimeout,
		SlowQueryThreshold: *slowThreshold,
		SlowQueryLogSize:   *slowLogSize,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("rapidserver: %v", err)
		}
	case <-ctx.Done():
		log.Printf("shutting down, draining in-flight queries...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("rapidserver: shutdown: %v", err)
		}
		log.Printf("served %d queries total", srv.Metrics().TotalServed())
	}
}

// buildStore loads the graph the server will serve.
func buildStore(data, gen string, size int, opts ra.Options) (*ra.Store, error) {
	switch {
	case data != "" && gen != "":
		return nil, fmt.Errorf("-data and -gen are mutually exclusive")
	case data != "":
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		store := ra.NewStore(opts)
		if err := store.LoadNTriples(f); err != nil {
			return nil, fmt.Errorf("loading %s: %w", data, err)
		}
		return store, nil
	case gen == "bsbm":
		return ra.NewBSBMStore(size, opts), nil
	case gen == "chem":
		return ra.NewChemStore(size, opts), nil
	case gen == "pubmed":
		return ra.NewPubMedStore(size, opts), nil
	case gen != "":
		return nil, fmt.Errorf("unknown generator %q (want bsbm, chem or pubmed)", gen)
	default:
		return nil, fmt.Errorf("one of -data or -gen is required")
	}
}
