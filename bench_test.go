package rapidanalytics

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark runs the corresponding workload — the same queries,
// datasets and engines — and reports the headline quantity as custom
// metrics:
//
//	sim-s/q        mean simulated cluster seconds per query (cost model at
//	               paper scale; compare against the paper's tables)
//	cycles/q       mean MapReduce cycles per query
//
// On the first iteration each benchmark also prints the rendered table or
// figure with the paper's published numbers alongside the measured ones, so
// `go test -bench=. | tee bench_output.txt` records the full reproduction.

import (
	"fmt"
	"sync"
	"testing"

	"rapidanalytics/internal/bench"
	"rapidanalytics/internal/engine"
)

// sharedLoader caches generated datasets across benchmarks.
var (
	loaderOnce sync.Once
	harness    *bench.Harness

	lexOnce    sync.Once
	lexHarness *bench.Harness
)

func benchHarness() *bench.Harness {
	loaderOnce.Do(func() { harness = bench.NewHarness(false) })
	return harness
}

// benchLexHarness loads datasets without dictionary encoding, for the
// lexical-plane side of the BenchmarkMG allocation gate.
func benchLexHarness() *bench.Harness {
	lexOnce.Do(func() {
		lexHarness = bench.NewHarness(false)
		lexHarness.Loader.Lexical = true
	})
	return lexHarness
}

var printOnce sync.Map

func printFirst(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

func report(b *testing.B, rs []bench.RunResult) {
	b.Helper()
	var sim float64
	var cycles int
	for _, r := range rs {
		sim += r.SimSeconds
		cycles += r.Cycles
	}
	n := float64(len(rs))
	if n == 0 {
		return
	}
	b.ReportMetric(sim/n, "sim-s/q")
	b.ReportMetric(float64(cycles)/n, "cycles/q")
}

// BenchmarkTable3BSBM regenerates the left half of Table 3: G1–G4 on
// BSBM-500K and BSBM-2M, Hive (Naive) vs RAPIDAnalytics.
func BenchmarkTable3BSBM(b *testing.B) {
	h := benchHarness()
	qs := []string{"G1", "G2", "G3", "G4"}
	engines := []engine.Engine{bench.Engines()[0], bench.Engines()[3]}
	for i := 0; i < b.N; i++ {
		r500k, err := h.RunAll(qs, "bsbm-500k", engines)
		if err != nil {
			b.Fatal(err)
		}
		r2m, err := h.RunAll(qs, "bsbm-2m", engines)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table3-bsbm", bench.RenderTable3BSBM(r500k, r2m))
		report(b, append(r500k, r2m...))
	}
}

// BenchmarkTable3Chem regenerates the right half of Table 3: G5–G9 on
// Chem2Bio2RDF.
func BenchmarkTable3Chem(b *testing.B) {
	h := benchHarness()
	qs := []string{"G5", "G6", "G7", "G8", "G9"}
	engines := []engine.Engine{bench.Engines()[0], bench.Engines()[3]}
	for i := 0; i < b.N; i++ {
		rs, err := h.RunAll(qs, "chem", engines)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table3-chem", bench.RenderTable3Chem(rs))
		report(b, rs)
	}
}

// BenchmarkFigure8a regenerates Figure 8(a): MG1–MG4 on BSBM-500K across
// all four engines.
func BenchmarkFigure8a(b *testing.B) {
	benchFigure(b, "Figure 8(a): MG1-MG4 on BSBM-500K (10 nodes)",
		[]string{"MG1", "MG2", "MG3", "MG4"}, "bsbm-500k")
}

// BenchmarkFigure8b regenerates Figure 8(b): MG1–MG4 on BSBM-2M (the
// scalability study, 50-node cluster).
func BenchmarkFigure8b(b *testing.B) {
	benchFigure(b, "Figure 8(b): MG1-MG4 on BSBM-2M (50 nodes)",
		[]string{"MG1", "MG2", "MG3", "MG4"}, "bsbm-2m")
}

// BenchmarkFigure8c regenerates Figure 8(c): MG6–MG10 on Chem2Bio2RDF.
func BenchmarkFigure8c(b *testing.B) {
	benchFigure(b, "Figure 8(c): MG6-MG10 on Chem2Bio2RDF (10 nodes)",
		[]string{"MG6", "MG7", "MG8", "MG9", "MG10"}, "chem")
}

func benchFigure(b *testing.B, title string, qs []string, dataset string) {
	b.Helper()
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		rs, err := h.RunAll(qs, dataset, bench.Engines())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(title, bench.RenderFigure(title, qs, rs))
		report(b, rs)
	}
}

// BenchmarkTable4PubMed regenerates Table 4: MG11–MG18 on PubMed across
// all four engines (60-node cluster).
func BenchmarkTable4PubMed(b *testing.B) {
	h := benchHarness()
	qs := []string{"MG11", "MG12", "MG13", "MG14", "MG15", "MG16", "MG17", "MG18"}
	for i := 0; i < b.N; i++ {
		rs, err := h.RunAll(qs, "pubmed", bench.Engines())
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table4", bench.RenderTable4(rs))
		report(b, rs)
	}
}

// BenchmarkCycleCounts regenerates the §5.2 MR-cycle verification over the
// whole catalog.
func BenchmarkCycleCounts(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		var all []bench.RunResult
		for _, grp := range []struct {
			ids []string
			ds  string
		}{
			{[]string{"G1", "G3"}, "bsbm-500k"},
			{[]string{"MG1", "MG3"}, "bsbm-500k"},
			{[]string{"MG6", "MG9"}, "chem"},
			{[]string{"MG11", "MG13"}, "pubmed"},
		} {
			rs, err := h.RunAll(grp.ids, grp.ds, bench.Engines())
			if err != nil {
				b.Fatal(err)
			}
			all = append(all, rs...)
		}
		printFirst("cycles", bench.RenderCycles(all))
		report(b, all)
	}
}

// BenchmarkAblationParallelAgg regenerates the Figure 6(a) vs 6(b)
// comparison plus the α-filter and hash-pre-aggregation ablations on the
// BSBM multi-grouping queries.
func BenchmarkAblationParallelAgg(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		var all []bench.RunResult
		for _, q := range []string{"MG1", "MG2", "MG3", "MG4"} {
			rs, err := h.RunAblation(q, "bsbm-500k")
			if err != nil {
				b.Fatal(err)
			}
			all = append(all, rs...)
		}
		printFirst("ablation", bench.RenderAblation(all))
		report(b, all)
	}
}

// BenchmarkMG runs the flagship multi-grouping query MG1 per engine with
// tracing disabled — the allocation gate for the observability layer and the
// data plane: run with -benchmem and compare allocs/op against the previous
// baseline. The dict sub-benchmarks cover the dictionary-encoded plane (the
// default load path); the lexical ones pin the original string plane so a
// regression in either shows up separately.
func BenchmarkMG(b *testing.B) {
	planes := []struct {
		name string
		h    *bench.Harness
	}{
		{"dict", benchHarness()},
		{"lexical", benchLexHarness()},
	}
	for _, p := range planes {
		for _, e := range bench.Engines() {
			e := e
			h := p.h
			b.Run(p.name+"/"+e.Name(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rs, err := h.Run("MG1", "bsbm-500k", []engine.Engine{e})
					if err != nil {
						b.Fatal(err)
					}
					report(b, rs)
				}
			})
		}
	}
}

// BenchmarkEngineMG1 provides per-engine micro-benchmarks for the paper's
// flagship query.
func BenchmarkEngineMG1(b *testing.B) {
	h := benchHarness()
	for _, e := range bench.Engines() {
		e := e
		b.Run(e.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, err := h.Run("MG1", "bsbm-500k", []engine.Engine{e})
				if err != nil {
					b.Fatal(err)
				}
				report(b, rs)
			}
		})
	}
}
