package rapidanalytics

import (
	"fmt"
	"strings"
)

// RollupSpec describes a ROLLUP-style analytical query — the paper's
// "natural extension ... to support more complex OLAP queries on RDF data
// models". One graph pattern is aggregated along a dimension hierarchy:
// GROUP BY (d1..dn), (d1..dn-1), ..., (), one subquery per level. All
// levels share the same graph pattern, so RAPIDAnalytics evaluates the
// whole rollup with ONE composite pattern pass and ONE parallel Agg-Join
// cycle, regardless of depth.
type RollupSpec struct {
	// Prologue holds PREFIX declarations.
	Prologue string
	// Pattern is the graph pattern text (triple patterns and filters,
	// without enclosing braces) binding every dimension and the aggregated
	// variable.
	Pattern string
	// Agg is the aggregate function: COUNT, SUM, AVG, MIN or MAX.
	Agg string
	// Var is the aggregated variable name, without '?'.
	Var string
	// Distinct selects the DISTINCT form of the aggregate.
	Distinct bool
	// Dims are the dimension variable names (without '?'), coarsest first:
	// the rollup computes (Dims...), (Dims[:n-1]...), ..., ().
	Dims []string
}

// BuildRollup renders the spec as a SPARQL analytical query.
func BuildRollup(spec RollupSpec) (string, error) {
	if len(spec.Dims) == 0 {
		return "", fmt.Errorf("%w: rollup needs at least one dimension", ErrUnsupported)
	}
	if strings.TrimSpace(spec.Pattern) == "" || spec.Var == "" {
		return "", fmt.Errorf("%w: rollup needs a pattern and an aggregated variable", ErrUnsupported)
	}
	switch strings.ToUpper(spec.Agg) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
	default:
		return "", fmt.Errorf("%w: rollup aggregate %q", ErrUnsupported, spec.Agg)
	}
	for _, d := range spec.Dims {
		if d == spec.Var {
			return "", fmt.Errorf("%w: dimension ?%s is also the aggregated variable", ErrUnsupported, d)
		}
	}
	distinct := ""
	if spec.Distinct {
		distinct = "DISTINCT "
	}
	alias := func(level int) string { return fmt.Sprintf("agg_lvl%d", level) }

	var b strings.Builder
	if spec.Prologue != "" {
		b.WriteString(strings.TrimSpace(spec.Prologue))
		b.WriteString("\n")
	}
	b.WriteString("SELECT")
	for _, d := range spec.Dims {
		fmt.Fprintf(&b, " ?%s", d)
	}
	for lvl := 0; lvl <= len(spec.Dims); lvl++ {
		fmt.Fprintf(&b, " ?%s", alias(lvl))
	}
	b.WriteString(" {\n")
	for lvl := 0; lvl <= len(spec.Dims); lvl++ {
		dims := spec.Dims[:len(spec.Dims)-lvl]
		b.WriteString("  { SELECT")
		for _, d := range dims {
			fmt.Fprintf(&b, " ?%s", d)
		}
		fmt.Fprintf(&b, " (%s(%s?%s) AS ?%s)\n    {\n%s\n    }",
			strings.ToUpper(spec.Agg), distinct, spec.Var, alias(lvl), indent(spec.Pattern, "      "))
		if len(dims) > 0 {
			b.WriteString(" GROUP BY")
			for _, d := range dims {
				fmt.Fprintf(&b, " ?%s", d)
			}
		}
		b.WriteString(" }\n")
	}
	b.WriteString("}")
	return b.String(), nil
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	for i, l := range lines {
		lines[i] = prefix + strings.TrimSpace(l)
	}
	return strings.Join(lines, "\n")
}
