// E-commerce analytics on a generated BSBM-like catalog: the paper's
// motivating workload (Berlin SPARQL BI use case). Two related groupings —
// average offer price per product feature, and per vendor country across
// all features — are answered by one analytical query whose overlapping
// graph patterns RAPIDAnalytics rewrites into a single composite pattern.
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"

	ra "rapidanalytics"
)

// perFeatureVsCountry is the paper's MG3 shape: price statistics per
// (feature, country) compared with per-country totals across all features.
var perFeatureVsCountry = "PREFIX bsbm: <" + ra.BSBMNamespace + ">\n" + `
SELECT ?f ?c ?sumF ?cntF ?sumT ?cntT {
  { SELECT ?f ?c (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a bsbm:ProductType1 ; bsbm:label ?l2 ; bsbm:productFeature ?f .
      ?off2 bsbm:product ?p2 ; bsbm:price ?pr2 ; bsbm:vendor ?v2 .
      ?v2 bsbm:country ?c .
    } GROUP BY ?f ?c }
  { SELECT ?c (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a bsbm:ProductType1 ; bsbm:label ?l1 .
      ?off1 bsbm:product ?p1 ; bsbm:price ?pr ; bsbm:vendor ?v1 .
      ?v1 bsbm:country ?c .
    } GROUP BY ?c }
}`

// priceRatio is the paper's AQ1: for each country, product features with
// the ratio between average price with that feature and without.
var priceRatio = "PREFIX bsbm: <" + ra.BSBMNamespace + ">\n" + `
SELECT ?f ?c ((?sumF/?cntF) / (?sumT/?cntT) AS ?ratio) {
  { SELECT ?f ?c (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a bsbm:ProductType1 ; bsbm:label ?l2 ; bsbm:productFeature ?f .
      ?off2 bsbm:product ?p2 ; bsbm:price ?pr2 ; bsbm:vendor ?v2 .
      ?v2 bsbm:country ?c .
    } GROUP BY ?f ?c }
  { SELECT ?c (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a bsbm:ProductType1 ; bsbm:label ?l1 .
      ?off1 bsbm:product ?p1 ; bsbm:price ?pr ; bsbm:vendor ?v1 .
      ?v1 bsbm:country ?c .
    } GROUP BY ?c }
}`

func main() {
	// A store sized like BSBM-500K scaled to a laptop, with the paper's
	// 10-node cluster cost model extrapolated to the full 175M triples.
	store := ra.NewBSBMStore(600, ra.Options{Nodes: 10, DataScale: 6000})
	fmt.Printf("generated BSBM catalog: %d triples\n\n", store.NumTriples())

	fmt.Println("Engine comparison on the MG3-style query:")
	for _, sys := range ra.Systems() {
		res, stats, err := store.Query(sys, perFeatureVsCountry)
		if err != nil {
			log.Fatalf("%s: %v", sys, err)
		}
		fmt.Printf("  %-16s %2d cycles  %6.0f simulated seconds  %5d rows\n",
			sys, stats.MRCycles, stats.SimulatedSeconds, res.Len())
	}
	fmt.Println()

	// Business question: which features command the highest price premium
	// per country?
	res, _, err := store.Query(ra.RAPIDAnalytics, priceRatio)
	if err != nil {
		log.Fatal(err)
	}
	type row struct {
		feature, country string
		ratio            float64
	}
	var rows []row
	for _, r := range res.Rows() {
		f, err := strconv.ParseFloat(r[2], 64)
		if err != nil {
			continue
		}
		rows = append(rows, row{r[0], r[1], f})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ratio > rows[j].ratio })
	fmt.Println("Top price-premium features per country (feature, country, ratio):")
	for i, r := range rows {
		if i == 8 {
			break
		}
		fmt.Printf("  %-40s %-4s %.2f\n", r.feature, r.country, r.ratio)
	}
}
