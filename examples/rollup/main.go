// ROLLUP extension: the paper's conclusion names "more complex OLAP
// queries" as the natural next step. Because the composite-pattern
// machinery is n-ary, a whole ROLLUP hierarchy — (country, feature),
// (country), () — is one analytical query whose identical graph patterns
// collapse into a single composite pass with all levels aggregated in one
// parallel Agg-Join cycle.
package main

import (
	"fmt"
	"log"

	ra "rapidanalytics"
)

func main() {
	store := ra.NewBSBMStore(400, ra.Options{Nodes: 10, DataScale: 6000})
	fmt.Printf("generated BSBM catalog: %d triples\n\n", store.NumTriples())

	query, err := ra.BuildRollup(ra.RollupSpec{
		Prologue: "PREFIX bsbm: <" + ra.BSBMNamespace + ">",
		Pattern: `?p a bsbm:ProductType1 ; bsbm:productFeature ?f .
?off bsbm:product ?p ; bsbm:price ?a ; bsbm:vendor ?v .
?v bsbm:country ?c .`,
		Agg:  "SUM",
		Var:  "a",
		Dims: []string{"c", "f"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated ROLLUP query:")
	fmt.Println(query)
	fmt.Println()

	plan, err := ra.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimizer view:")
	fmt.Print(plan)
	fmt.Println()

	for _, sys := range ra.Systems() {
		res, stats, err := store.Query(sys, query)
		if err != nil {
			log.Fatalf("%s: %v", sys, err)
		}
		fmt.Printf("%-16s %2d MR cycles, %6.0f simulated seconds, %d rows\n",
			sys, stats.MRCycles, stats.SimulatedSeconds, res.Len())
	}

	res, _, err := store.Query(ra.RAPIDAnalytics, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsample rows (country, feature, sum(c,f), sum(c), sum()):")
	for i, row := range res.Rows() {
		if i == 6 {
			break
		}
		fmt.Printf("  %v\n", row)
	}
}
