// Bibliometric analytics on a generated PubMed-like graph: grant-funding
// comparisons across countries (the paper's MG11/MG18) and the
// high-fan-out MeSH-heading workload (MG13) whose intermediate results
// blew past HDFS capacity for naive Hive in the paper. Demonstrates why
// the triplegroup representation's concise (denormalised) intermediate
// results matter.
package main

import (
	"fmt"
	"log"

	ra "rapidanalytics"
)

var mg11 = "PREFIX pm: <" + ra.PubMedNamespace + ">\n" + `
SELECT ?c ?cntC ?cntT {
  { SELECT ?c (COUNT(?g) AS ?cntC)
    { ?pub pm:journal ?j ; pm:grant ?g .
      ?g pm:grant_agency ?ga ; pm:grant_country ?c .
    } GROUP BY ?c }
  { SELECT (COUNT(?g1) AS ?cntT)
    { ?pub1 pm:journal ?j1 ; pm:grant ?g1 .
      ?g1 pm:grant_agency ?ga1 .
    } }
}`

var mg13 = "PREFIX pm: <" + ra.PubMedNamespace + ">\n" + `
SELECT ?a ?pty ?perAPT ?perPT {
  { SELECT ?a ?pty (COUNT(?m) AS ?perAPT)
    { ?p pm:pub_type ?pty ; pm:mesh_heading ?m ; pm:author ?a .
      ?a pm:last_name ?ln .
    } GROUP BY ?a ?pty }
  { SELECT ?pty (COUNT(?m1) AS ?perPT)
    { ?p1 pm:pub_type ?pty ; pm:mesh_heading ?m1 ; pm:author ?a1 .
      ?a1 pm:last_name ?ln1 .
    } GROUP BY ?pty }
}`

func main() {
	// The paper ran PubMed on a 60-node cluster; DataScale extrapolates our
	// laptop-sized graph to the 1.7B-triple original.
	store := ra.NewPubMedStore(2000, ra.Options{Nodes: 60, DataScale: 37000})
	fmt.Printf("generated PubMed graph: %d triples\n\n", store.NumTriples())

	fmt.Println("MG11 — grant-funded journal publications per country vs. total:")
	res, stats, err := store.Query(ra.RAPIDAnalytics, mg11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
	fmt.Printf("(%d MR cycles, %.0f simulated seconds)\n\n", stats.MRCycles, stats.SimulatedSeconds)

	fmt.Println("MG13 — MeSH headings per author-pubtype vs. per pubtype:")
	fmt.Println("intermediate-result materialisation per engine (the paper's")
	fmt.Println("naive-Hive HDFS blow-up, reproduced in bytes):")
	for _, sys := range ra.Systems() {
		res, stats, err := store.Query(sys, mg13)
		if err != nil {
			log.Fatalf("%s: %v", sys, err)
		}
		fmt.Printf("  %-16s %2d cycles  materialized %8.1f MB  shuffled %8.1f MB  (%d rows)\n",
			sys, stats.MRCycles,
			float64(stats.MaterializedBytes)/(1<<20),
			float64(stats.ShuffleBytes)/(1<<20),
			res.Len())
	}
}
