// Quickstart: build a tiny product catalog by hand, ask one analytical
// question — "how does each feature's average price compare to the overall
// average?" — and watch the four engines answer it in very different
// numbers of MapReduce cycles.
package main

import (
	"fmt"
	"log"

	ra "rapidanalytics"
)

const query = `PREFIX shop: <http://example.org/shop/>
SELECT ?feature ?sumF ?cntF ?sumT ?cntT {
  { SELECT ?feature (COUNT(?price2) AS ?cntF) (SUM(?price2) AS ?sumF)
    { ?p2 a shop:Phone ; shop:label ?l2 ; shop:feature ?feature .
      ?offer2 shop:product ?p2 ; shop:price ?price2 .
    } GROUP BY ?feature }
  { SELECT (COUNT(?price) AS ?cntT) (SUM(?price) AS ?sumT)
    { ?p1 a shop:Phone ; shop:label ?l1 .
      ?offer1 shop:product ?p1 ; shop:price ?price .
    } }
}`

func main() {
	store := ra.NewStore(ra.DefaultOptions())
	ns := "http://example.org/shop/"
	addProduct := func(id, label string, features ...string) {
		store.Add(ns+id, "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", ra.IRI(ns+"Phone"))
		store.Add(ns+id, ns+"label", ra.Literal(label))
		for _, f := range features {
			store.Add(ns+id, ns+"feature", ra.IRI(ns+f))
		}
	}
	addOffer := func(id, product, price string) {
		store.Add(ns+id, ns+"product", ra.IRI(ns+product))
		store.Add(ns+id, ns+"price", ra.Literal(price))
	}
	addProduct("px", "Phone X", "5G", "OLED")
	addProduct("py", "Phone Y", "5G")
	addProduct("pz", "Phone Z") // no listed features
	addOffer("o1", "px", "900")
	addOffer("o2", "px", "850")
	addOffer("o3", "py", "500")
	addOffer("o4", "pz", "200")

	// First, ask the optimizer what it sees in this query.
	explain, err := ra.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- optimizer view ---")
	fmt.Print(explain)
	fmt.Println()

	// Then run it on every engine. All four return identical rows; they
	// differ in how many MapReduce cycles (and how much shuffled data) it
	// takes.
	for _, sys := range ra.Systems() {
		res, stats, err := store.Query(sys, query)
		if err != nil {
			log.Fatalf("%s: %v", sys, err)
		}
		fmt.Printf("--- %s: %d MR cycles (%d map-only), %.0f simulated seconds ---\n",
			sys, stats.MRCycles, stats.MapOnlyCycles, stats.SimulatedSeconds)
		fmt.Print(res)
		fmt.Println()
	}
}
