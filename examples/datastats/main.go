// Dataset statistics with unbound-property patterns — the "don't care
// relationship" queries of §5.2 (handled via the extension path of [32]).
// VoID-style predicate usage counts and per-type property fan-outs are
// single analytical queries; the Hive engines must fall back to scanning
// the full triples table while the NTGA engines read whole triplegroups,
// so the cost gap widens.
package main

import (
	"fmt"
	"log"

	ra "rapidanalytics"
)

var predicateUsage = "PREFIX bsbm: <" + ra.BSBMNamespace + ">\n" + `
SELECT ?p (COUNT(?o) AS ?uses) (COUNT(DISTINCT ?o) AS ?distinctObjects) {
  ?s ?p ?o .
} GROUP BY ?p ORDER BY DESC(?uses)`

var productFanout = "PREFIX bsbm: <" + ra.BSBMNamespace + ">\n" + `
SELECT ?p (COUNT(?o) AS ?n) {
  ?s a bsbm:ProductType1 ; ?p ?o .
} GROUP BY ?p ORDER BY DESC(?n)`

func main() {
	store := ra.NewBSBMStore(300, ra.Options{Nodes: 10, DataScale: 6000})
	fmt.Printf("generated BSBM catalog: %d triples\n\n", store.NumTriples())

	fmt.Println("Predicate usage (VoID-style statistics):")
	res, stats, err := store.Query(ra.RAPIDAnalytics, predicateUsage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
	fmt.Printf("(%d MR cycles, %.0f simulated seconds)\n\n", stats.MRCycles, stats.SimulatedSeconds)

	fmt.Println("Property fan-out of ProductType1 products, engine comparison:")
	for _, sys := range ra.Systems() {
		res, stats, err := store.Query(sys, productFanout)
		if err != nil {
			log.Fatalf("%s: %v", sys, err)
		}
		fmt.Printf("  %-16s %2d cycles  %6.0f simulated seconds  %d properties\n",
			sys, stats.MRCycles, stats.SimulatedSeconds, res.Len())
	}
}
