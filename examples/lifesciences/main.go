// Life-sciences analytics on a generated Chem2Bio2RDF-like chemogenomics
// graph — the paper's motivating Semantic Web scenario (drug discovery,
// ReDD-Observatory-style disparity studies). Runs the single-grouping G5
// (compounds sharing targets with Dexamethasone) and the multi-grouping MG6
// (assays per compound-gene vs. per compound).
package main

import (
	"fmt"
	"log"

	ra "rapidanalytics"
)

var g5 = "PREFIX c: <" + ra.ChemNamespace + ">\n" + `
SELECT ?cid (COUNT(?cid) AS ?active_assays) {
  ?b c:CID ?cid ; c:outcome ?a ; c:Score ?s1 ; c:gi ?gi .
  ?u c:gi ?gi ; c:geneSymbol ?g .
  ?di c:gene ?g ; c:DBID ?dr .
  ?dr c:Generic_Name "Dexamethasone" .
} GROUP BY ?cid`

var mg6 = "PREFIX c: <" + ra.ChemNamespace + ">\n" + `
SELECT ?cid ?g1 ?aPerCG ?aPerC {
  { SELECT ?cid ?g1 (COUNT(?cid) AS ?aPerCG)
    { ?b1 c:CID ?cid ; c:outcome ?a1 ; c:Score ?s1 ; c:gi ?gi1 .
      ?u1 c:gi ?gi1 ; c:geneSymbol ?g1 .
      ?di1 c:gene ?g1 ; c:DBID ?dr1 .
    } GROUP BY ?cid ?g1 }
  { SELECT ?cid (COUNT(?cid) AS ?aPerC)
    { ?b c:CID ?cid ; c:outcome ?a ; c:Score ?s ; c:gi ?gi .
      ?u c:gi ?gi ; c:geneSymbol ?g .
      ?di c:gene ?g ; c:DBID ?dr .
    } GROUP BY ?cid }
}`

func main() {
	store := ra.NewChemStore(800, ra.Options{Nodes: 10, DataScale: 12000})
	fmt.Printf("generated chemogenomics graph: %d triples\n\n", store.NumTriples())

	// G5: a 4-star chain query (bioassay → protein → drug-target → drug).
	fmt.Println("G5 — compounds sharing targets with Dexamethasone:")
	res, stats, err := store.Query(ra.RAPIDAnalytics, g5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  RAPIDAnalytics: %d compounds in %d MR cycles (%.0f simulated seconds)\n",
		res.Len(), stats.MRCycles, stats.SimulatedSeconds)
	hres, hstats, err := store.Query(ra.HiveNaive, g5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Hive (Naive):   %d compounds in %d MR cycles (%.0f simulated seconds)\n\n",
		hres.Len(), hstats.MRCycles, hstats.SimulatedSeconds)

	// MG6: the multi-grouping comparison. The two graph patterns are
	// identical, so the composite rewriting shares every scan and join.
	explain, err := ra.Explain(mg6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MG6 — optimizer view:")
	fmt.Print(explain)
	fmt.Println()
	for _, sys := range ra.Systems() {
		res, stats, err := store.Query(sys, mg6)
		if err != nil {
			log.Fatalf("%s: %v", sys, err)
		}
		fmt.Printf("  %-16s %2d cycles  %6.0f simulated seconds  %5d rows\n",
			sys, stats.MRCycles, stats.SimulatedSeconds, res.Len())
	}
}
