// Package rapidanalytics is a Go implementation of RAPIDAnalytics, the
// SPARQL analytical query optimizer of "Optimization of Complex SPARQL
// Analytical Queries" (EDBT 2016), together with everything it runs on: a
// simulated MapReduce cluster with an exact cost model, vertically
// partitioned and triplegroup RDF storage, and the three baseline engines
// the paper evaluates against (Hive Naive, Hive MQO, RAPID+).
//
// The central idea: an analytical query's related groupings range over
// overlapping graph patterns. RAPIDAnalytics detects the overlap, rewrites
// the patterns into one composite graph pattern evaluated once (sharing
// scans and star joins), and computes all grouping-aggregations in a single
// parallel Agg-Join cycle — e.g. 3 MapReduce cycles instead of Hive's 9 for
// the paper's MG1.
//
// Quick start:
//
//	store := rapidanalytics.NewStore(rapidanalytics.DefaultOptions())
//	store.Add("http://e/p1", "http://e/price", rapidanalytics.Literal("42"))
//	...
//	res, stats, err := store.Query(rapidanalytics.RAPIDAnalytics, sparqlText)
//	fmt.Print(res)                 // result table
//	fmt.Println(stats.MRCycles)    // how many MapReduce cycles it took
package rapidanalytics

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"rapidanalytics/internal/algebra"
	"rapidanalytics/internal/core"
	"rapidanalytics/internal/dfs"
	"rapidanalytics/internal/engine"
	"rapidanalytics/internal/hive"
	"rapidanalytics/internal/mapred"
	"rapidanalytics/internal/obs"
	"rapidanalytics/internal/plancache"
	"rapidanalytics/internal/rapid"
	"rapidanalytics/internal/rdf"
	"rapidanalytics/internal/refimpl"
	"rapidanalytics/internal/share"
	"rapidanalytics/internal/sparql"
	"rapidanalytics/internal/tgops"
)

// System identifies one of the four evaluated engines, plus the in-memory
// reference evaluator.
type System string

// The available systems.
const (
	// RAPIDAnalytics is the paper's contribution: composite graph pattern
	// rewriting with parallel triplegroup Agg-Joins.
	RAPIDAnalytics System = "rapidanalytics"
	// RAPIDPlus is the naive NTGA baseline (sequential pattern
	// evaluation).
	RAPIDPlus System = "rapid+"
	// HiveNaive is the relational SPARQL→HiveQL-style baseline.
	HiveNaive System = "hive-naive"
	// HiveMQO is the multi-query-optimization rewriting baseline.
	HiveMQO System = "hive-mqo"
	// Reference evaluates the query directly in memory (no MapReduce); its
	// Stats are zero. Used as the correctness oracle.
	Reference System = "reference"
)

// Systems lists the MapReduce-backed systems in the paper's presentation
// order.
func Systems() []System {
	return []System{HiveNaive, HiveMQO, RAPIDPlus, RAPIDAnalytics}
}

// Options configures the simulated cluster a store's queries run on.
type Options struct {
	// Nodes is the simulated cluster size (paper: 10, 50 or 60).
	Nodes int
	// DataScale extrapolates measured data volumes before cost modelling,
	// so simulated seconds are comparable to a dataset DataScale times
	// larger than the loaded one. 1 means no extrapolation.
	DataScale float64
	// MapJoinBytes is Hive's broadcast-join budget at paper scale
	// (default: 25MB, hive.mapjoin.smalltable.filesize).
	MapJoinBytes int64
	// PlanCacheSize bounds the store's LRU plan cache (entries). 0 means
	// the default of 128; negative disables plan caching entirely.
	PlanCacheSize int
	// DictionaryEncoding stores both physical layouts with integer term IDs
	// and runs the whole data plane (scan, shuffle, join, aggregation) on
	// the compact ID encoding, decoding back to lexical form only at final
	// aggregation; results are byte-identical either way. Enabled by
	// DefaultOptions; false reproduces the original lexical layouts.
	DictionaryEncoding bool
	// Storage selects the simulated DFS backend: StorageMem (the default)
	// keeps every record in memory; StorageDisk materialises files as
	// sharded blockstore segments under DataDir. Output bytes are identical
	// on both. Empty honors the RAPID_STORAGE environment variable,
	// defaulting to memory.
	Storage string
	// DataDir roots disk-backed storage. Empty uses a fresh directory under
	// the OS temp dir. Each (re)materialisation of the store's layouts
	// writes under a new load-numbered subdirectory, so in-flight queries
	// keep reading consistent snapshots; stale loads are not reclaimed
	// until the process exits.
	DataDir string
	// StorageShards is the disk backend's directory shard count (0 = the
	// blockstore default of 8).
	StorageShards int
	// SpillThresholdBytes bounds each map task's buffered shuffle output:
	// past the threshold, partition buffers are sorted and spilled to the
	// DFS and merged back during the shuffle. 0 disables spilling. Query
	// results and output bytes are identical for every setting.
	SpillThresholdBytes int64
	// Streaming keeps eligible intermediate job outputs in the DFS stream
	// registry as columnar term-ID batches instead of materialising them
	// into the storage backend — the vectorized streaming plane. Only
	// single-consumer outputs of one job chain stream; checkpointed and
	// multi-consumer outputs keep the real DFS boundary. Query results,
	// volume metrics and simulated seconds are byte-identical either way.
	// Enabled by DefaultOptions.
	Streaming bool
	// StreamBatchRows is the row capacity of streamed columnar batches;
	// <= 0 selects the vec package default (1024).
	StreamBatchRows int
	// CostBasedPlanner drives every engine's join ordering, the Hive
	// map-join-site decision for intermediates, and reduce partition counts
	// from the load-time statistics catalog (internal/stats), and enables
	// the NTGA engines' mid-query re-plan hook. Enabled by DefaultOptions;
	// false reverts to the fixed star-0-first heuristic with measured
	// sizes. Results are identical either way.
	CostBasedPlanner bool
	// ReplanRatio is the estimate-vs-observed cardinality error ratio above
	// which an executing join chain re-orders its remaining joins. 0 selects
	// the default of 4; negative disables re-planning while keeping
	// cost-based ordering.
	ReplanRatio float64
	// RAPIDAnalyticsOptions toggles the optimizer's features (ablations).
	RAPIDAnalyticsOptions *EngineFeatures
	// SharedScans batches concurrent in-flight queries' scans of identical
	// base-layout file ranges into one shared pass per cycle window
	// (internal/share) — serving-time MQO across query boundaries. Results
	// are identical either way. Disabled by DefaultOptions; the serving
	// layer (cmd/rapidserver) enables it.
	SharedScans bool
	// SharedScanWindow is how long the first scanner of a range waits for
	// concurrent queries to join its cycle. 0 selects share.DefaultWindow;
	// negative shares only exactly-simultaneous arrivals.
	SharedScanWindow time.Duration
	// ResultCacheBytes bounds a byte-budget LRU caching final query results
	// and reusable composite sub-relations, keyed by (system, canonical
	// query form, statistics-catalog version) so no entry survives a data
	// mutation. 0 disables result caching (the default).
	ResultCacheBytes int64
}

// EngineFeatures mirrors the RAPIDAnalytics design choices (all enabled in
// the paper's configuration).
type EngineFeatures struct {
	ParallelAggregation bool
	AlphaFiltering      bool
	HashAggregation     bool
	InputPruning        bool
}

// Storage backends selectable through Options.Storage and the -storage
// flag of cmd/rapidanalytics and cmd/rapidserver.
const (
	// StorageMem keeps the simulated DFS in memory (the default).
	StorageMem = "mem"
	// StorageDisk persists DFS files as sharded blockstore segment files.
	StorageDisk = "disk"
)

// DefaultOptions returns a 10-node cluster with no data-scale
// extrapolation.
func DefaultOptions() Options {
	return Options{
		Nodes:              10,
		DataScale:          1,
		MapJoinBytes:       25 << 20,
		DictionaryEncoding: true,
		Streaming:          true,
		CostBasedPlanner:   true,
		ReplanRatio:        rapid.DefaultReplanRatio,
	}
}

// Term is an RDF term accepted by Store.Add.
type Term struct {
	value     string
	isLiteral bool
}

// IRI makes an IRI term.
func IRI(v string) Term { return Term{value: v} }

// Literal makes a literal term.
func Literal(v string) Term { return Term{value: v, isLiteral: true} }

// Store holds an RDF graph and lazily materialises it into the simulated
// cluster's storage layouts (vertical partitioning for the Hive engines, a
// subject-triplegroup store for the NTGA engines) on first query.
//
// A Store is safe for concurrent use. Concurrency model: readers/writers on
// the graph are serialised by an RWMutex — every query holds the read lock
// for its whole execution, and mutations (Add, LoadNTriples) take the write
// lock, so a mutation waits for in-flight queries to drain and queries never
// observe a half-applied batch. This favours the serving workload (many
// concurrent read-only queries, rare bulk loads) over mutation latency;
// snapshot semantics were rejected because the reference evaluator and the
// lazy materialisation both walk the live graph.
type Store struct {
	opts Options

	// mu guards graph contents against in-flight queries (see above).
	mu    sync.RWMutex
	graph *rdf.Graph

	// loadMu guards the lazily materialised cluster state. It is always
	// acquired after mu (never the reverse), so the order is deadlock-free.
	loadMu  sync.Mutex
	cluster *mapred.Cluster
	ds      *engine.Dataset
	loads   int
	// dataVersion counts mutation-triggered layout invalidations. It is
	// folded into every plan-cache key, so a plan cached before a reload —
	// against the previous statistics catalog — can never be served after
	// one (guarded by loadMu, like the state it versions).
	dataVersion uint64

	// plans caches compiled plans; nil when disabled. Compilation itself is
	// data-independent (parse + overlap detection + composite rewrite), but
	// keys include dataVersion so entries from before a mutation cannot
	// outlive the statistics they were cached alongside.
	plans *plancache.Cache

	// results caches final result tables and composite sub-relations under
	// one byte budget; nil when disabled. Keys embed the statistics-catalog
	// version (final results) or the load-numbered dataset name (sub-
	// relations), so entries from before a mutation stop being addressable
	// and age out of the LRU.
	results *plancache.SizedCache

	// scans is the current load's shared-scan scheduler (nil unless
	// Options.SharedScans); scanStatsBase accumulates counters from
	// superseded loads so SharedScanStats stays monotonic across reloads.
	// Both are guarded by loadMu.
	scans         *share.Scheduler
	scanStatsBase share.Stats
}

// NewStore returns an empty store.
func NewStore(opts Options) *Store {
	if opts.Nodes <= 0 {
		opts.Nodes = 10
	}
	if opts.Storage == "" {
		opts.Storage = os.Getenv("RAPID_STORAGE")
	}
	if opts.Storage == "" {
		opts.Storage = StorageMem
	}
	if opts.DataScale <= 0 {
		opts.DataScale = 1
	}
	if opts.MapJoinBytes <= 0 {
		opts.MapJoinBytes = 25 << 20
	}
	if opts.ReplanRatio == 0 {
		opts.ReplanRatio = rapid.DefaultReplanRatio
	}
	var plans *plancache.Cache
	if opts.PlanCacheSize >= 0 {
		size := opts.PlanCacheSize
		if size == 0 {
			size = 128
		}
		plans = plancache.New(size)
	}
	var results *plancache.SizedCache
	if opts.ResultCacheBytes > 0 {
		results = plancache.NewSized(opts.ResultCacheBytes)
	}
	return &Store{opts: opts, graph: &rdf.Graph{}, plans: plans, results: results}
}

// Add appends one triple. The subject and property are IRIs. Add blocks
// until in-flight queries finish.
func (s *Store) Add(subject, property string, object Term) {
	obj := rdf.NewIRI(object.value)
	if object.isLiteral {
		obj = rdf.NewLiteral(object.value)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.graph.Add(rdf.T(rdf.NewIRI(subject), rdf.NewIRI(property), obj))
	s.invalidateLayouts()
}

// AddGraph appends a whole internal graph (used by the generators).
func (s *Store) addGraph(g *rdf.Graph) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.graph.Add(g.Triples...)
	s.invalidateLayouts()
}

// invalidateLayouts drops the materialised storage layouts after a
// mutation and bumps the data version plan-cache keys are scoped by.
// Callers hold s.mu.
func (s *Store) invalidateLayouts() {
	s.loadMu.Lock()
	s.ds = nil
	s.dataVersion++
	if s.scans != nil {
		s.scanStatsBase = s.scanStatsBase.Add(s.scans.Stats())
		s.scans = nil
	}
	s.loadMu.Unlock()
}

// currentDataVersion reads the mutation counter under loadMu.
func (s *Store) currentDataVersion() uint64 {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	return s.dataVersion
}

// LoadNTriples reads an N-Triples document into the store.
func (s *Store) LoadNTriples(r io.Reader) error {
	g, err := rdf.ReadNTriples(r)
	if err != nil {
		return err
	}
	s.addGraph(g)
	return nil
}

// WriteNTriples serialises the store's graph.
func (s *Store) WriteNTriples(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return rdf.WriteNTriples(w, s.graph)
}

// NumTriples returns the number of loaded triples.
func (s *Store) NumTriples() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.Len()
}

// ensureLoaded materialises the storage layouts (once) and returns the
// cluster and dataset to execute on. Callers hold s.mu.RLock, so the graph
// cannot change underneath the materialisation.
func (s *Store) ensureLoaded() (*mapred.Cluster, *engine.Dataset, error) {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	if s.ds == nil {
		cfg := mapred.VCL10(s.opts.DataScale)
		cfg.Nodes = s.opts.Nodes
		cfg.SpillThresholdBytes = s.opts.SpillThresholdBytes
		cfg.Streaming = s.opts.Streaming
		cfg.StreamBatchRows = s.opts.StreamBatchRows
		s.loads++
		fs, err := s.newFS()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %w", ErrStorage, err)
		}
		cluster := mapred.NewClusterFS(cfg, fs)
		if s.opts.SharedScans {
			// Share only base-layout scans: per-query tmp/ intermediates
			// have unique names and would pay the window for nothing.
			s.scans = share.New(fs, share.Options{
				Window: s.opts.SharedScanWindow,
				Prefix: "store/",
			})
			cluster.Scans = s.scans
		}
		ds, err := engine.LoadWith(cluster, fmt.Sprintf("store/%d", s.loads), s.graph,
			engine.LoadOptions{DictionaryEncoding: s.opts.DictionaryEncoding})
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %w", ErrStorage, err)
		}
		s.cluster, s.ds = cluster, ds
	}
	return s.cluster, s.ds, nil
}

// newFS builds the DFS for one materialisation of the store's layouts.
// Each disk-backed load gets its own load-numbered directory: queries
// in flight on the previous load keep their snapshots, at the cost of
// leaking superseded loads until process exit (acceptable for the rare
// bulk-load-then-query workload the store favours).
func (s *Store) newFS() (*dfs.FS, error) {
	switch s.opts.Storage {
	case StorageMem:
		return dfs.New(), nil
	case StorageDisk:
		dir := s.opts.DataDir
		if dir == "" {
			d, err := os.MkdirTemp("", "rapidanalytics-")
			if err != nil {
				return nil, err
			}
			dir = d
			s.opts.DataDir = d
		}
		return dfs.NewDisk(filepath.Join(dir, fmt.Sprintf("load-%d", s.loads)), s.opts.StorageShards)
	default:
		return nil, fmt.Errorf("unknown storage backend %q (want %q or %q)", s.opts.Storage, StorageMem, StorageDisk)
	}
}

// Stats summarises one query execution.
type Stats struct {
	// System that executed the query.
	System System
	// MRCycles is the number of MapReduce cycles in the workflow.
	MRCycles int
	// MapOnlyCycles counts cycles without a reduce phase.
	MapOnlyCycles int
	// SimulatedSeconds is the cost model's cluster-time estimate.
	SimulatedSeconds float64
	// ShuffleBytes and MaterializedBytes are measured volumes.
	ShuffleBytes      int64
	MaterializedBytes int64
	// MapWall, ShuffleSortWall and ReduceWall are the measured wall-clock
	// times the in-process engine spent in each execution phase. Unlike the
	// deterministic volume fields, they describe this machine and this run.
	MapWall         time.Duration
	ShuffleSortWall time.Duration
	ReduceWall      time.Duration
	// ResultCacheHit reports that the whole result table was served from
	// the store's versioned result cache: no MapReduce cycles ran and the
	// volume fields above are zero.
	ResultCacheHit bool
	// Jobs traces each MapReduce cycle in execution order.
	Jobs []JobStats
	// Span is the execution's hierarchical span tree (query → planner →
	// cycle → phase → operator → task), captured only when the query ran
	// under a WithTracing context; nil otherwise.
	Span *TraceSpan
}

// TraceSpan is one node of a captured span tree. See Stats.Span.
type TraceSpan = obs.Snapshot

// WithTracing marks the context so query executions under it capture a
// hierarchical span tree into Stats.Span. Tracing adds per-task span
// bookkeeping; untraced executions pay nothing.
func WithTracing(ctx context.Context) context.Context {
	return obs.Enable(ctx)
}

// JobStats traces one MapReduce cycle.
type JobStats struct {
	// Name identifies the cycle in the engine's plan.
	Name string
	// MapOnly reports whether the cycle had no reduce phase.
	MapOnly bool
	// SimulatedSeconds is the cycle's cost-model estimate.
	SimulatedSeconds float64
	// InputRecords, ShuffleBytes and OutputBytes are measured volumes.
	InputRecords int64
	ShuffleBytes int64
	OutputBytes  int64
	// MapTasks and ReduceTasks are the simulated task counts.
	MapTasks    int
	ReduceTasks int
	// MapWall, ShuffleSortWall and ReduceWall are the cycle's measured
	// in-process phase times on this machine.
	MapWall         time.Duration
	ShuffleSortWall time.Duration
	ReduceWall      time.Duration
}

// Trace renders the per-cycle execution trace as an aligned table. The
// cycle column widens to the longest label, so long MQO plan names (e.g.
// gp3-distinct with a map-only suffix) keep the numeric columns aligned.
func (s *Stats) Trace() string {
	names := make([]string, len(s.Jobs))
	width := len("cycle")
	for i, j := range s.Jobs {
		names[i] = j.Name
		if j.MapOnly {
			names[i] += " (map-only)"
		}
		if len(names[i]) > width {
			width = len(names[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s %8s %10s %12s %12s %6s %6s %8s %8s %8s\n",
		width, "cycle", "sim-s", "records", "shuffle B", "output B", "maps", "reds",
		"map-ms", "sort-ms", "red-ms")
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for i, j := range s.Jobs {
		fmt.Fprintf(&b, "%-*s %8.0f %10d %12d %12d %6d %6d %8.2f %8.2f %8.2f\n",
			width, names[i], j.SimulatedSeconds, j.InputRecords, j.ShuffleBytes, j.OutputBytes,
			j.MapTasks, j.ReduceTasks, ms(j.MapWall), ms(j.ShuffleSortWall), ms(j.ReduceWall))
	}
	return b.String()
}

// TraceTree renders the captured span tree as an indented tree with wall,
// record and byte columns. Empty when the query did not run under a
// WithTracing context.
func (s *Stats) TraceTree() string { return s.Span.Tree() }

// TraceJSON serialises the captured span tree as indented JSON, or nil when
// no trace was captured.
func (s *Stats) TraceJSON() ([]byte, error) {
	if s.Span == nil {
		return nil, nil
	}
	return s.Span.JSON()
}

// Result is a query result table. Values are display forms: IRIs and
// literal lexical forms for grouping columns, numbers for aggregates.
type Result struct {
	Columns []string
	rows    [][]string
	raw     *engine.Result
}

// Rows returns the result rows.
func (r *Result) Rows() [][]string { return r.rows }

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.rows) }

// String renders an aligned table.
func (r *Result) String() string { return r.raw.Pretty() }

func (s *Store) engineFor(sys System) (engine.Engine, error) {
	hiveConf := hive.Config{MapJoinBytes: s.opts.MapJoinBytes, CostPlanner: s.opts.CostBasedPlanner}
	switch sys {
	case RAPIDAnalytics:
		e := core.New()
		if f := s.opts.RAPIDAnalyticsOptions; f != nil {
			e.Opts = core.Options{
				ParallelAggregation: f.ParallelAggregation,
				AlphaFiltering:      f.AlphaFiltering,
				HashAggregation:     f.HashAggregation,
				InputPruning:        f.InputPruning,
				DictionaryEncoding:  s.opts.DictionaryEncoding,
			}
		}
		e.Opts.CostPlanner = s.opts.CostBasedPlanner
		e.Opts.ReplanRatio = s.opts.ReplanRatio
		if s.results != nil {
			e.SubResults = subResultCache{c: s.results, version: s.currentDataVersion()}
		}
		return e, nil
	case RAPIDPlus:
		return &rapid.Engine{CostPlanner: s.opts.CostBasedPlanner, ReplanRatio: s.opts.ReplanRatio}, nil
	case HiveNaive:
		return &hive.Naive{Conf: hiveConf}, nil
	case HiveMQO:
		return &hive.MQO{Conf: hiveConf}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownSystem, sys)
	}
}

// validSystem reports whether sys names an executable system (including the
// in-memory Reference oracle).
func validSystem(sys System) bool {
	switch sys {
	case RAPIDAnalytics, RAPIDPlus, HiveNaive, HiveMQO, Reference:
		return true
	}
	return false
}

// Query parses and runs a SPARQL analytical query on the chosen system.
// Compilation goes through the store's plan cache; repeated query texts skip
// the parse → overlap-detection → composite-rewrite pipeline.
func (s *Store) Query(sys System, query string) (*Result, *Stats, error) {
	return s.QueryContext(context.Background(), sys, query)
}

// QueryContext is Query bound to a context: execution aborts between
// MapReduce records/groups/cycles once ctx is done, returning an error
// matching ErrTimeout or ErrCanceled.
func (s *Store) QueryContext(ctx context.Context, sys System, query string) (*Result, *Stats, error) {
	pq, err := s.Prepare(sys, query)
	if err != nil {
		return nil, nil, err
	}
	return pq.Execute(ctx)
}

// PreparedQuery is a compiled plan bound to a store and system, ready for
// repeated (and concurrent) execution. Obtain one with Store.Prepare.
type PreparedQuery struct {
	store    *Store
	sys      System
	q        *Compiled
	cacheHit bool
}

// Prepare parses, validates and plans a query for the chosen system,
// consulting the store's LRU plan cache first. The cache is keyed by
// (system, data version, query text) and additionally by (system, data
// version, canonicalized text), so differently-formatted spellings of one
// query share a plan but no entry survives a mutation of the store: a
// reload after Add rebuilds the statistics catalog, and plans cached
// against the previous version simply stop being addressable. Errors match
// ErrParse, ErrUnsupported or ErrUnknownSystem.
func (s *Store) Prepare(sys System, query string) (*PreparedQuery, error) {
	if !validSystem(sys) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSystem, sys)
	}
	if s.plans == nil {
		c, err := Compile(query)
		if err != nil {
			return nil, err
		}
		return &PreparedQuery{store: s, sys: sys, q: c}, nil
	}
	version := s.currentDataVersion()
	rawKey := plancache.VersionedKey(string(sys), version, query)
	if v, ok := s.plans.Get(rawKey); ok {
		return &PreparedQuery{store: s, sys: sys, q: v.(*Compiled), cacheHit: true}, nil
	}
	c, err := Compile(query)
	if err != nil {
		return nil, err
	}
	canonKey := plancache.VersionedKey(string(sys), version, c.Normalized())
	if canonKey != rawKey {
		if v, ok := s.plans.Get(canonKey); ok {
			// Another spelling of the same query is already planned; alias
			// this spelling to the shared plan.
			c = v.(*Compiled)
			s.plans.Put(rawKey, c)
			return &PreparedQuery{store: s, sys: sys, q: c, cacheHit: true}, nil
		}
		s.plans.Put(rawKey, c)
	}
	s.plans.Put(canonKey, c)
	return &PreparedQuery{store: s, sys: sys, q: c}, nil
}

// Execute runs the prepared plan. It is safe to call concurrently from many
// goroutines; each call executes independently under ctx.
func (p *PreparedQuery) Execute(ctx context.Context) (*Result, *Stats, error) {
	return p.store.run(ctx, p.sys, p.q)
}

// System returns the system the plan was prepared for.
func (p *PreparedQuery) System() System { return p.sys }

// Normalized renders the prepared query in canonical SPARQL form.
func (p *PreparedQuery) Normalized() string { return p.q.Normalized() }

// CacheHit reports whether Prepare served this plan from the cache.
func (p *PreparedQuery) CacheHit() bool { return p.cacheHit }

// PlanCacheStats returns a snapshot of the plan cache counters (zero when
// caching is disabled).
func (s *Store) PlanCacheStats() plancache.Stats {
	if s.plans == nil {
		return plancache.Stats{}
	}
	return s.plans.Stats()
}

// ResultCacheStats returns a snapshot of the result/sub-relation cache
// counters (zero when Options.ResultCacheBytes is 0).
func (s *Store) ResultCacheStats() plancache.Stats {
	if s.results == nil {
		return plancache.Stats{}
	}
	return s.results.Stats()
}

// SharedScanStats returns the shared-scan scheduler counters, accumulated
// across dataset rematerialisations (zero when Options.SharedScans is
// off).
func (s *Store) SharedScanStats() share.Stats {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	if s.scans == nil {
		return s.scanStatsBase
	}
	return s.scanStatsBase.Add(s.scans.Stats())
}

// Compiled is a parsed and validated analytical query, reusable across
// stores and systems.
type Compiled struct {
	aq     *algebra.AnalyticalQuery
	parsed *sparql.Query
	src    string

	normOnce sync.Once
	norm     string
}

// Compile parses and validates a SPARQL analytical query. Syntax failures
// match ErrParse; valid SPARQL outside the analytical fragment matches
// ErrUnsupported.
func Compile(query string) (*Compiled, error) {
	parsed, err := sparql.Parse(query)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrParse, err)
	}
	aq, err := algebra.Build(parsed)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrUnsupported, err)
	}
	return &Compiled{aq: aq, parsed: parsed, src: query}, nil
}

// Normalized renders the query in canonical SPARQL form (sorted prologue,
// compacted IRIs, grouped predicate lists). The rendering is memoised: the
// serving layer calls this on every execution to key the result cache.
func (c *Compiled) Normalized() string {
	c.normOnce.Do(func() { c.norm = sparql.Format(c.parsed) })
	return c.norm
}

// QueryCompiled runs a pre-compiled query, bypassing the plan cache.
func (s *Store) QueryCompiled(sys System, q *Compiled) (*Result, *Stats, error) {
	return s.run(context.Background(), sys, q)
}

func (s *Store) run(ctx context.Context, sys System, q *Compiled) (*Result, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, wrapContextErr(ctx, err)
	}
	// Hold the read lock for the whole execution: mutations wait, queries
	// proceed in parallel (see the Store doc comment).
	s.mu.RLock()
	defer s.mu.RUnlock()
	if sys == Reference {
		res, err := refimpl.Execute(s.graph, q.aq)
		if err != nil {
			return nil, nil, err
		}
		return wrapResult(res), &Stats{System: sys}, nil
	}
	eng, err := s.engineFor(sys)
	if err != nil {
		return nil, nil, err
	}
	// A WithTracing context gets a root span; engines and the MR cluster
	// attach planner/cycle spans to it through the same context.
	var root *obs.Span
	if obs.Enabled(ctx) {
		root = obs.New(obs.KindQuery, string(sys))
		ctx = obs.NewContext(ctx, root)
	}
	cluster, ds, err := s.ensureLoaded()
	if err != nil {
		return nil, nil, err
	}
	// Result cache: the key folds in the statistics-catalog version, so a
	// mutation (which rebuilds the catalog) makes every prior entry
	// unaddressable — stale results cannot be served.
	var resultKey string
	if s.results != nil {
		version := s.currentDataVersion()
		if ds.Stats != nil {
			version = ds.Stats.Version
		}
		resultKey = "res\x00" + plancache.VersionedKey(string(sys), version, q.Normalized())
		if v, ok := s.results.Get(resultKey); ok {
			hit := v.(*Result)
			sp := root.StartChild(obs.KindPlanner, "cache-hit")
			sp.End()
			root.End()
			stats := &Stats{System: sys, ResultCacheHit: true}
			stats.Span = root.Snapshot()
			return hit, stats, nil
		}
	}
	res, wm, err := eng.Execute(cluster.WithContext(ctx), ds, q.aq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, nil, wrapContextErr(ctx, err)
		}
		return nil, nil, err
	}
	root.End()
	mapNs, shuffleSortNs, reduceNs := wm.PhaseWalls()
	stats := &Stats{
		System:            sys,
		MRCycles:          wm.Cycles(),
		MapOnlyCycles:     wm.MapOnlyCycles(),
		SimulatedSeconds:  wm.SimSeconds(),
		ShuffleBytes:      wm.ShuffleBytes(),
		MaterializedBytes: wm.MaterializedBytes(),
		MapWall:           time.Duration(mapNs),
		ShuffleSortWall:   time.Duration(shuffleSortNs),
		ReduceWall:        time.Duration(reduceNs),
	}
	for _, j := range wm.Jobs {
		shuffle := j.MapOutputBytes
		if j.MapOnly {
			shuffle = 0
		}
		stats.Jobs = append(stats.Jobs, JobStats{
			Name:             j.Job,
			MapOnly:          j.MapOnly,
			SimulatedSeconds: j.SimSeconds,
			InputRecords:     j.MapInputRecords,
			ShuffleBytes:     shuffle,
			OutputBytes:      j.OutputBytes,
			MapTasks:         j.SimulatedMapTasks,
			ReduceTasks:      j.SimulatedRedTasks,
			MapWall:          time.Duration(j.MapWallNs),
			ShuffleSortWall:  time.Duration(j.ShuffleSortWallNs),
			ReduceWall:       time.Duration(j.ReduceWallNs),
		})
	}
	stats.Span = root.Snapshot()
	result := wrapResult(res)
	if resultKey != "" {
		// Cached results are shared read-only across future executions;
		// Result exposes no mutators, so sharing is safe.
		s.results.Put(resultKey, result, resultBytes(result))
	}
	return result, stats, nil
}

// resultBytes accounts a cached result table: cell and column bytes plus
// slice/string header overhead per row and cell.
func resultBytes(r *Result) int64 {
	const headerOverhead = 24
	var n int64
	for _, col := range r.Columns {
		n += int64(len(col)) + headerOverhead
	}
	for _, row := range r.rows {
		n += headerOverhead
		for _, cell := range row {
			n += int64(len(cell)) + headerOverhead
		}
	}
	return n
}

// subResultCache adapts the store's byte-budget cache to the core engine's
// composite sub-relation seam. Keys fold in the data version current when
// the engine was built (the engine is per-execution, under the store read
// lock): the core keys sub-results by dataset names alone, which would
// otherwise keep serving pre-reload relations after a mutation rebuilds
// them under the same names. The "comp" namespace separates the seam from
// final results ("res\x00" keys).
type subResultCache struct {
	c       *plancache.SizedCache
	version uint64
}

// Get implements core.SubResultCache.
func (a subResultCache) Get(key string) (tgops.Source, bool) {
	v, ok := a.c.Get("comp\x00" + plancache.VersionedKey("comp", a.version, key))
	if !ok {
		return tgops.Source{}, false
	}
	return v.(tgops.Source), true
}

// Put implements core.SubResultCache.
func (a subResultCache) Put(key string, src tgops.Source, bytes int64) {
	a.c.Put("comp\x00"+plancache.VersionedKey("comp", a.version, key), src, bytes)
}

func wrapResult(res *engine.Result) *Result {
	rows := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		row := make([]string, len(r))
		for j, v := range r {
			row[j] = engine.Display(v)
		}
		rows[i] = row
	}
	return &Result{Columns: res.Columns, rows: rows, raw: res}
}

// Explain describes how RAPIDAnalytics would evaluate the query: the
// detected pattern overlap, the composite graph pattern with its primary
// and secondary properties, the per-pattern α conditions, and the predicted
// MapReduce cycle counts for every system.
func Explain(query string) (string, error) {
	q, err := Compile(query)
	if err != nil {
		return "", err
	}
	aq := q.aq
	var b strings.Builder
	fmt.Fprintf(&b, "analytical query: %d grouping(s)\n", len(aq.Subqueries))
	for _, sq := range aq.Subqueries {
		group := "ALL"
		if !sq.GroupByAll() {
			group = "?" + strings.Join(sq.GroupBy, ", ?")
		}
		fmt.Fprintf(&b, "  GP%d: %s\n       GROUP BY %s, %d aggregate(s)\n", sq.ID+1, abbreviate(sq.Pattern.String()), group, len(sq.Aggs))
	}
	if len(aq.Subqueries) >= 2 {
		cp, err := algebra.BuildComposite(aq.Subqueries)
		if err != nil {
			fmt.Fprintf(&b, "patterns do NOT overlap (%v); engines fall back to sequential evaluation\n", err)
		} else {
			fmt.Fprintf(&b, "patterns overlap; composite pattern GP' = %s  (secondary properties marked '?')\n", abbreviate(cp.String()))
			for k := 0; k < cp.NumPatterns; k++ {
				var conds []string
				for _, cs := range cp.Stars {
					for _, ref := range cs.RequiredSecondaryFor(k) {
						conds = append(conds, shortProp(ref.Key())+" != {}")
					}
				}
				if len(conds) == 0 {
					conds = []string{"true"}
				}
				fmt.Fprintf(&b, "  α(GP%d): %s\n", k+1, strings.Join(conds, " ∧ "))
			}
		}
	}
	b.WriteString("predicted MapReduce cycles:\n")
	for _, sys := range Systems() {
		fmt.Fprintf(&b, "  %-14s %d\n", string(sys), PredictCycles(q, sys))
	}
	return b.String(), nil
}

func shortProp(key string) string {
	if i := strings.Index(key, "="); i >= 0 {
		return shortProp(key[:i]) + "=" + shortProp(strings.TrimPrefix(key[i+1:], "I"))
	}
	if i := strings.LastIndexAny(key, "/#"); i >= 0 && i+1 < len(key) {
		return key[i+1:]
	}
	return key
}

// abbreviate shortens every IRI inside a pattern rendering to its local
// name, keeping the structural punctuation.
func abbreviate(pattern string) string {
	var b strings.Builder
	token := strings.Builder{}
	flush := func() {
		if token.Len() > 0 {
			b.WriteString(shortProp(token.String()))
			token.Reset()
		}
	}
	for _, r := range pattern {
		switch r {
		case '{', '}', ',', ' ', '⋈', '?':
			flush()
			b.WriteRune(r)
		default:
			token.WriteRune(r)
		}
	}
	flush()
	return b.String()
}

// PredictCycles returns the number of MapReduce cycles a system's plan for
// the query will have (map-join decisions change which cycles are map-only
// but never how many cycles run).
func PredictCycles(q *Compiled, sys System) int {
	aq := q.aq
	multi := len(aq.Subqueries) > 1
	finalJoin := 0
	if multi {
		finalJoin = 1
	}
	if aq.Sorted() {
		finalJoin++ // the ORDER BY/LIMIT total-order cycle
	}
	perPatternHive := func(sq *algebra.Subquery) int {
		n := 0
		for _, st := range sq.Pattern.Stars {
			if len(st.Triples)+len(st.Optionals) >= 2 {
				n++ // star-join cycle
			}
		}
		return n + len(sq.Pattern.Stars) - 1 + 1 // inter-star joins + grouping
	}
	switch sys {
	case HiveNaive:
		total := 0
		for _, sq := range aq.Subqueries {
			total += perPatternHive(sq)
		}
		return total + finalJoin
	case HiveMQO:
		cp, err := compositeOf(aq)
		if err != nil {
			return PredictCycles(q, HiveNaive)
		}
		n := 0
		for _, cs := range cp.Stars {
			if len(cs.Props) >= 2 {
				n++
			}
		}
		n += len(cp.Stars) - 1 // inter-star joins
		for k := range aq.Subqueries {
			n++ // aggregation
			if mqoNeedsDistinct(cp, k) {
				n++
			}
		}
		return n + finalJoin
	case RAPIDPlus:
		total := 0
		for _, sq := range aq.Subqueries {
			total += len(sq.Pattern.Stars) - 1 + 1
		}
		return total + finalJoin
	case RAPIDAnalytics:
		cp, err := compositeOf(aq)
		if err != nil {
			total := 0
			for _, sq := range aq.Subqueries {
				total += len(sq.Pattern.Stars) - 1 + 1
			}
			return total + finalJoin
		}
		return len(cp.Stars) - 1 + 1 + finalJoin
	default:
		return 0
	}
}

func compositeOf(aq *algebra.AnalyticalQuery) (*algebra.CompositePattern, error) {
	if len(aq.Subqueries) < 2 {
		return nil, fmt.Errorf("single grouping")
	}
	return algebra.BuildComposite(aq.Subqueries)
}

func mqoNeedsDistinct(cp *algebra.CompositePattern, k int) bool {
	for _, cs := range cp.Stars {
		for _, p := range cs.Props {
			if len(p.Owners) != cp.NumPatterns && !p.Owners[k] {
				return true
			}
		}
	}
	return false
}
