package rapidanalytics

import (
	"rapidanalytics/internal/datagen"
)

// Vocabulary namespaces of the built-in generators, for writing queries
// against generated stores.
const (
	// BSBMNamespace is the e-commerce vocabulary (products, offers,
	// vendors).
	BSBMNamespace = datagen.BSBM
	// ChemNamespace is the chemogenomics vocabulary (compounds, genes,
	// drugs, pathways).
	ChemNamespace = datagen.Chem
	// PubMedNamespace is the bibliographic vocabulary (publications,
	// authors, grants).
	PubMedNamespace = datagen.PubMed
)

// NewBSBMStore returns a store filled with a deterministic Berlin SPARQL
// Benchmark-like e-commerce graph of the given product count.
func NewBSBMStore(products int, opts Options) *Store {
	s := NewStore(opts)
	cfg := datagen.BSBMSmall()
	if products > 0 {
		cfg.Products = products
	}
	s.addGraph(datagen.GenerateBSBM(cfg))
	return s
}

// NewChemStore returns a store filled with a deterministic
// Chem2Bio2RDF-like chemogenomics graph of the given compound count.
func NewChemStore(compounds int, opts Options) *Store {
	s := NewStore(opts)
	cfg := datagen.ChemDefault()
	if compounds > 0 {
		cfg.Compounds = compounds
	}
	s.addGraph(datagen.GenerateChem(cfg))
	return s
}

// NewPubMedStore returns a store filled with a deterministic
// PubMed/Bio2RDF-like bibliographic graph of the given publication count.
func NewPubMedStore(publications int, opts Options) *Store {
	s := NewStore(opts)
	cfg := datagen.PubMedDefault()
	if publications > 0 {
		cfg.Publications = publications
	}
	s.addGraph(datagen.GeneratePubMed(cfg))
	return s
}
