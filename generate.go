package rapidanalytics

import (
	"rapidanalytics/internal/datagen"
)

// Vocabulary namespaces of the built-in generators, for writing queries
// against generated stores.
const (
	// BSBMNamespace is the e-commerce vocabulary (products, offers,
	// vendors).
	BSBMNamespace = datagen.BSBM
	// ChemNamespace is the chemogenomics vocabulary (compounds, genes,
	// drugs, pathways).
	ChemNamespace = datagen.Chem
	// PubMedNamespace is the bibliographic vocabulary (publications,
	// authors, grants).
	PubMedNamespace = datagen.PubMed
)

// NewWorkloadStore returns a store holding all three generator graphs
// (BSBM, Chem2Bio2RDF and PubMed) merged into one dataset. The vocabularies
// are disjoint, so the full evaluation query catalog runs against a single
// serving endpoint — this is the serving benchmark's dataset. sizeMult
// scales every generator's primary entity count (<=0 selects 1).
func NewWorkloadStore(sizeMult float64, opts Options) *Store {
	if sizeMult <= 0 {
		sizeMult = 1
	}
	scaled := func(n int) int {
		if n = int(float64(n) * sizeMult); n < 1 {
			return 1
		}
		return n
	}
	s := NewStore(opts)
	b := datagen.BSBMSmall()
	b.Products = scaled(b.Products)
	s.addGraph(datagen.GenerateBSBM(b))
	c := datagen.ChemDefault()
	c.Compounds = scaled(c.Compounds)
	s.addGraph(datagen.GenerateChem(c))
	p := datagen.PubMedDefault()
	p.Publications = scaled(p.Publications)
	s.addGraph(datagen.GeneratePubMed(p))
	return s
}

// NewBSBMStore returns a store filled with a deterministic Berlin SPARQL
// Benchmark-like e-commerce graph of the given product count.
func NewBSBMStore(products int, opts Options) *Store {
	s := NewStore(opts)
	cfg := datagen.BSBMSmall()
	if products > 0 {
		cfg.Products = products
	}
	s.addGraph(datagen.GenerateBSBM(cfg))
	return s
}

// NewChemStore returns a store filled with a deterministic
// Chem2Bio2RDF-like chemogenomics graph of the given compound count.
func NewChemStore(compounds int, opts Options) *Store {
	s := NewStore(opts)
	cfg := datagen.ChemDefault()
	if compounds > 0 {
		cfg.Compounds = compounds
	}
	s.addGraph(datagen.GenerateChem(cfg))
	return s
}

// NewPubMedStore returns a store filled with a deterministic
// PubMed/Bio2RDF-like bibliographic graph of the given publication count.
func NewPubMedStore(publications int, opts Options) *Store {
	s := NewStore(opts)
	cfg := datagen.PubMedDefault()
	if publications > 0 {
		cfg.Publications = publications
	}
	s.addGraph(datagen.GeneratePubMed(cfg))
	return s
}
