package rapidanalytics

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors returned by Compile, Store.Prepare, Store.Query and
// (*PreparedQuery).Execute. They classify failures so callers (notably the
// HTTP serving layer in internal/server) can map them to a response without
// matching message strings. Test with errors.Is; the concrete cause stays
// on the wrap chain.
var (
	// ErrParse reports that the query text is not syntactically valid
	// SPARQL.
	ErrParse = errors.New("rapidanalytics: parse error")
	// ErrUnsupported reports a syntactically valid query outside the
	// analytical fragment the engines evaluate (star-shaped
	// grouping-aggregation queries).
	ErrUnsupported = errors.New("rapidanalytics: unsupported query")
	// ErrUnknownSystem reports a System value that names no engine.
	ErrUnknownSystem = errors.New("rapidanalytics: unknown system")
	// ErrTimeout reports that the execution context's deadline expired
	// mid-query. errors.Is(err, context.DeadlineExceeded) also holds.
	ErrTimeout = errors.New("rapidanalytics: query timed out")
	// ErrCanceled reports that the execution context was cancelled
	// mid-query. errors.Is(err, context.Canceled) also holds.
	ErrCanceled = errors.New("rapidanalytics: query canceled")
	// ErrStorage reports that the store's DFS backend could not be set up
	// or the storage layouts could not be materialised (e.g. an unwritable
	// DataDir with Options.Storage = StorageDisk).
	ErrStorage = errors.New("rapidanalytics: storage error")
)

// wrapContextErr classifies a failure that happened while ctx was dead:
// deadline expiry becomes ErrTimeout, cancellation ErrCanceled. The original
// error remains on the chain.
func wrapContextErr(ctx context.Context, err error) error {
	switch {
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	case errors.Is(ctx.Err(), context.Canceled):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	default:
		return err
	}
}
