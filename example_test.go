package rapidanalytics_test

import (
	"fmt"

	ra "rapidanalytics"
)

// buildShop fills a store with a tiny product catalog.
func buildShop() *ra.Store {
	store := ra.NewStore(ra.DefaultOptions())
	ns := "http://example.org/"
	typ := ns + "Phone"
	add := func(s, p string, o ra.Term) { store.Add(ns+s, ns+p, o) }
	for _, p := range []struct {
		id       string
		features []string
	}{
		{"px", []string{"5G", "OLED"}},
		{"py", []string{"5G"}},
		{"pz", nil},
	} {
		store.Add(ns+p.id, "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", ra.IRI(typ))
		add(p.id, "label", ra.Literal(p.id))
		for _, f := range p.features {
			add(p.id, "feature", ra.IRI(ns+f))
		}
	}
	for _, o := range [][3]string{
		{"o1", "px", "900"}, {"o2", "px", "850"}, {"o3", "py", "500"}, {"o4", "pz", "200"},
	} {
		add(o[0], "product", ra.IRI(ns+o[1]))
		add(o[0], "price", ra.Literal(o[2]))
	}
	return store
}

const exampleQuery = `PREFIX e: <http://example.org/>
SELECT ?feature ?cntF ?cntT {
  { SELECT ?feature (COUNT(?pr2) AS ?cntF)
    { ?p2 a e:Phone ; e:label ?l2 ; e:feature ?feature .
      ?o2 e:product ?p2 ; e:price ?pr2 . } GROUP BY ?feature }
  { SELECT (COUNT(?pr) AS ?cntT)
    { ?p1 a e:Phone ; e:label ?l1 .
      ?o1 e:product ?p1 ; e:price ?pr . } }
} ORDER BY ?feature`

// The flagship flow: one analytical query with two related groupings,
// answered by RAPIDAnalytics in three MapReduce cycles.
func ExampleStore_Query() {
	store := buildShop()
	res, stats, err := store.Query(ra.RAPIDAnalytics, exampleQuery)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows() {
		fmt.Println(row[0], row[1], row[2])
	}
	fmt.Println("cycles:", stats.MRCycles)
	// Output:
	// http://example.org/5G 3 4
	// http://example.org/OLED 2 4
	// cycles: 4
}

// PredictCycles reports each engine's plan length without running it.
func ExamplePredictCycles() {
	q, err := ra.Compile(exampleQuery)
	if err != nil {
		panic(err)
	}
	for _, sys := range ra.Systems() {
		fmt.Println(sys, ra.PredictCycles(q, sys))
	}
	// Output:
	// hive-naive 10
	// hive-mqo 8
	// rapid+ 6
	// rapidanalytics 4
}

// BuildRollup generates a multi-level OLAP rollup as one analytical query.
func ExampleBuildRollup() {
	query, err := ra.BuildRollup(ra.RollupSpec{
		Prologue: "PREFIX e: <http://example.org/>",
		Pattern:  "?o e:product ?p ; e:price ?a . ?p e:label ?l .",
		Agg:      "COUNT",
		Var:      "a",
		Dims:     []string{"l"},
	})
	if err != nil {
		panic(err)
	}
	store := buildShop()
	res, _, err := store.Query(ra.RAPIDAnalytics, query)
	if err != nil {
		panic(err)
	}
	fmt.Println("rows:", res.Len())
	// Output:
	// rows: 3
}
