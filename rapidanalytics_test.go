package rapidanalytics

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

const apiQuery = `PREFIX e: <http://e/>
SELECT ?f ?cntF ?cntT {
  { SELECT ?f (COUNT(?pr2) AS ?cntF)
    { ?p2 a e:PT1 ; e:label ?l2 ; e:pf ?f .
      ?off2 e:product ?p2 ; e:price ?pr2 . } GROUP BY ?f }
  { SELECT (COUNT(?pr) AS ?cntT)
    { ?p1 a e:PT1 ; e:label ?l1 .
      ?off1 e:product ?p1 ; e:price ?pr . } }
}`

func apiStore() *Store {
	s := NewStore(DefaultOptions())
	add := func(subj, prop string, obj Term) { s.Add("http://e/"+subj, "http://e/"+prop, obj) }
	typ := func(subj, t string) {
		s.Add("http://e/"+subj, "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", IRI("http://e/"+t))
	}
	typ("p1", "PT1")
	add("p1", "label", Literal("one"))
	add("p1", "pf", IRI("http://e/f1"))
	add("p1", "pf", IRI("http://e/f2"))
	typ("p2", "PT1")
	add("p2", "label", Literal("two"))
	add("o1", "product", IRI("http://e/p1"))
	add("o1", "price", Literal("10"))
	add("o2", "product", IRI("http://e/p2"))
	add("o2", "price", Literal("20"))
	return s
}

func TestStoreQueryAllSystems(t *testing.T) {
	s := apiStore()
	ref, _, err := s.Query(Reference, apiQuery)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if ref.Len() != 2 {
		t.Fatalf("reference rows = %d, want 2 (f1, f2)", ref.Len())
	}
	for _, sys := range Systems() {
		res, stats, err := s.Query(sys, apiQuery)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.Len() != ref.Len() {
			t.Errorf("%s: rows = %d, want %d", sys, res.Len(), ref.Len())
		}
		if stats.MRCycles == 0 {
			t.Errorf("%s: no cycles", sys)
		}
		if stats.SimulatedSeconds <= 0 {
			t.Errorf("%s: no simulated time", sys)
		}
	}
}

func TestQueryCompiledAndReuse(t *testing.T) {
	q, err := Compile(apiQuery)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	s := apiStore()
	r1, _, err := s.QueryCompiled(RAPIDAnalytics, q)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := s.QueryCompiled(HiveNaive, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != r2.Len() {
		t.Errorf("row counts differ: %d vs %d", r1.Len(), r2.Len())
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("not sparql"); err == nil {
		t.Error("Compile accepted garbage")
	}
	if _, err := Compile(`PREFIX e: <http://e/> SELECT ?s { ?s e:p ?o . }`); err == nil {
		t.Error("Compile accepted a non-analytical query (no aggregates)")
	}
}

func TestUnknownSystem(t *testing.T) {
	s := apiStore()
	if _, _, err := s.Query(System("nope"), apiQuery); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestNTriplesRoundTripThroughStore(t *testing.T) {
	s := apiStore()
	var buf bytes.Buffer
	if err := s.WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(DefaultOptions())
	if err := s2.LoadNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.NumTriples() != s.NumTriples() {
		t.Errorf("triples = %d, want %d", s2.NumTriples(), s.NumTriples())
	}
	res, _, err := s2.Query(RAPIDAnalytics, apiQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("rows = %d, want 2", res.Len())
	}
}

func TestExplain(t *testing.T) {
	out, err := Explain(apiQuery)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	for _, want := range []string{"2 grouping(s)", "patterns overlap", "α(GP1)", "pf != {}", "α(GP2): true", "rapidanalytics", "hive-naive"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
}

func TestPredictCyclesMatchesExecution(t *testing.T) {
	q, err := Compile(apiQuery)
	if err != nil {
		t.Fatal(err)
	}
	s := apiStore()
	for _, sys := range Systems() {
		_, stats, err := s.QueryCompiled(sys, q)
		if err != nil {
			t.Fatal(err)
		}
		if got := PredictCycles(q, sys); got != stats.MRCycles {
			t.Errorf("%s: predicted %d cycles, executed %d", sys, got, stats.MRCycles)
		}
	}
}

func TestGeneratedStores(t *testing.T) {
	b := NewBSBMStore(50, DefaultOptions())
	if b.NumTriples() == 0 {
		t.Fatal("BSBM store empty")
	}
	c := NewChemStore(80, DefaultOptions())
	if c.NumTriples() == 0 {
		t.Fatal("Chem store empty")
	}
	p := NewPubMedStore(60, DefaultOptions())
	if p.NumTriples() == 0 {
		t.Fatal("PubMed store empty")
	}
	// Generators are deterministic.
	b2 := NewBSBMStore(50, DefaultOptions())
	if b2.NumTriples() != b.NumTriples() {
		t.Errorf("BSBM generation nondeterministic: %d vs %d", b2.NumTriples(), b.NumTriples())
	}
	// A quick query over the generated BSBM store.
	res, _, err := b.Query(RAPIDAnalytics, "PREFIX bsbm: <"+BSBMNamespace+">\n"+
		`SELECT (COUNT(?pr) AS ?cnt) { ?o bsbm:product ?p ; bsbm:price ?pr . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows()[0][0] == "0" {
		t.Errorf("BSBM offer count = %v", res.Rows())
	}
}

func TestStoreInvalidatedOnAdd(t *testing.T) {
	s := apiStore()
	before, _, err := s.Query(RAPIDAnalytics, apiQuery)
	if err != nil {
		t.Fatal(err)
	}
	// New product with feature f9 and an offer: per-feature rows grow.
	s.Add("http://e/p9", "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", IRI("http://e/PT1"))
	s.Add("http://e/p9", "http://e/label", Literal("nine"))
	s.Add("http://e/p9", "http://e/pf", IRI("http://e/f9"))
	s.Add("http://e/o9", "http://e/product", IRI("http://e/p9"))
	s.Add("http://e/o9", "http://e/price", Literal("99"))
	after, _, err := s.Query(RAPIDAnalytics, apiQuery)
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() != before.Len()+1 {
		t.Errorf("rows after add = %d, want %d", after.Len(), before.Len()+1)
	}
}

func TestNormalized(t *testing.T) {
	q, err := Compile(apiQuery)
	if err != nil {
		t.Fatal(err)
	}
	text := q.Normalized()
	q2, err := Compile(text)
	if err != nil {
		t.Fatalf("normalized query does not compile: %v\n%s", err, text)
	}
	if q2.Normalized() != text {
		t.Error("Normalized is not idempotent")
	}
}

func TestConcurrentQueries(t *testing.T) {
	s := apiStore()
	q, err := Compile(apiQuery)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		sys := Systems()[i%len(Systems())]
		wg.Add(1)
		go func(sys System) {
			defer wg.Done()
			res, _, err := s.QueryCompiled(sys, q)
			if err != nil {
				errs <- err
				return
			}
			if res.Len() != 2 {
				errs <- fmt.Errorf("%s: rows = %d", sys, res.Len())
			}
		}(sys)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
